"""Volcano-style single-threaded query executor with a columnar fast path.

veDB processes each query on one thread (paper Section VI): the whole plan
runs inside the calling client's simulation process, so a large scan
through remote storage serialises page fetch after page fetch - precisely
the pathology push-down removes.

Operators execute eagerly (OLAP-style materialisation); CPU is charged in
per-page / per-batch quanta to keep event counts manageable.

Execution modes
---------------

With ``batch_mode`` on (the default), the Scan/HashJoin/Aggregate spine
of a plan executes *vectorized* over :class:`~repro.query.columnar.ColumnBatch`
structures: pages decode column-major, predicates and join/group keys run
as compiled closures over parallel arrays (``repro.query.predicate``),
and only the surviving rows materialize as dicts.  The materialized rows
are — by construction — the exact dicts the row operators would have
produced (same keys, same insertion order, same float accumulation
order), so Project/Sort/Limit above the spine reuse the row operators
unchanged and every result is byte-identical to row mode.  Anything the
vectorizer cannot handle statically (IndexNLJoin, unresolvable column
references, exotic expression nodes) falls back to row mode per subtree,
decided before any page is fetched.  Simulated CPU charges are identical
in both modes; the win is real (wall-clock) interpreter work.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..common import US, QueryError
from ..engine.dbengine import DBEngine
from ..engine.table import Table
from .ast import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    Delete,
    Expr,
    InList,
    Insert,
    Like,
    Literal,
    Param,
    Select,
    SelectItem,
    UnaryOp,
    Update,
)
from .cache import ParseCache, bind_plan, bind_statement, parse_entry
from .columnar import (
    ColumnBatch,
    compile_batch_expr,
    compile_batch_predicate,
    decode_page_into,
    resolve_column,
)
from .predicate import NotCompilable, compile_row_predicate
from .plan import (
    Aggregate,
    HashJoin,
    IndexLookup,
    IndexNLJoin,
    Limit,
    PlanNode,
    Project,
    SeqScan,
    Sort,
)
from .planner import Planner, PlannerConfig

__all__ = ["QuerySession", "QueryResult", "PreparedStatement",
           "AggAccumulator", "new_agg_states", "update_agg_states",
           "merge_agg_states", "finalize_agg_states", "vector_group_by"]

#: CPU charged per row flowing through a tight operator loop.
ROW_CPU = 0.25 * US
#: CPU charged per page decode (slots -> row dicts).
PAGE_CPU = 2.0 * US


@dataclass
class QueryResult:
    columns: List[str]
    rows: List[Tuple[Any, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


# ---------------------------------------------------------------------------
# Aggregate accumulators (shared with the push-down runtime)
# ---------------------------------------------------------------------------


@dataclass
class AggAccumulator:
    """Partial state for one aggregate call."""

    count: int = 0
    total: float = 0.0
    minimum: Any = None
    maximum: Any = None
    distinct: Optional[set] = None


def new_agg_states(aggs: Sequence[AggCall]) -> List[AggAccumulator]:
    return [
        AggAccumulator(distinct=set() if agg.distinct else None) for agg in aggs
    ]


def update_agg_states(
    states: List[AggAccumulator], aggs: Sequence[AggCall], row: Dict[str, Any]
) -> None:
    for state, agg in zip(states, aggs):
        if agg.argument is None:  # COUNT(*)
            state.count += 1
            continue
        value = agg.argument.eval(row)
        if value is None:
            continue
        if agg.distinct:
            state.distinct.add(value)
            continue
        state.count += 1
        if agg.func in ("sum", "avg"):
            state.total += value
        elif agg.func == "min":
            state.minimum = value if state.minimum is None else min(state.minimum, value)
        elif agg.func == "max":
            state.maximum = value if state.maximum is None else max(state.maximum, value)


def merge_agg_states(
    into: List[AggAccumulator], other: List[AggAccumulator], aggs: Sequence[AggCall]
) -> None:
    for state, extra, agg in zip(into, other, aggs):
        if agg.distinct:
            state.distinct |= extra.distinct
            continue
        state.count += extra.count
        state.total += extra.total
        for attr, pick in (("minimum", min), ("maximum", max)):
            mine, theirs = getattr(state, attr), getattr(extra, attr)
            if theirs is not None:
                setattr(state, attr, theirs if mine is None else pick(mine, theirs))


def finalize_agg_states(
    states: List[AggAccumulator], aggs: Sequence[AggCall]
) -> Dict[AggCall, Any]:
    values: Dict[AggCall, Any] = {}
    for state, agg in zip(states, aggs):
        if agg.distinct:
            values[agg] = len(state.distinct)
        elif agg.func == "count":
            values[agg] = state.count
        elif agg.func == "sum":
            values[agg] = state.total if state.count else None
        elif agg.func == "avg":
            values[agg] = (state.total / state.count) if state.count else None
        elif agg.func == "min":
            values[agg] = state.minimum
        elif agg.func == "max":
            values[agg] = state.maximum
    return values


def eval_with_aggs(expr: Expr, row: Dict[str, Any],
                   agg_values: Dict[AggCall, Any]) -> Any:
    """Evaluate an expression that may embed aggregate results."""
    if isinstance(expr, AggCall):
        return agg_values[expr]
    if isinstance(expr, BinOp):
        if expr.op == "and":
            return bool(eval_with_aggs(expr.left, row, agg_values)) and bool(
                eval_with_aggs(expr.right, row, agg_values)
            )
        if expr.op == "or":
            return bool(eval_with_aggs(expr.left, row, agg_values)) or bool(
                eval_with_aggs(expr.right, row, agg_values)
            )
        left = eval_with_aggs(expr.left, row, agg_values)
        right = eval_with_aggs(expr.right, row, agg_values)
        rebuilt = BinOp(expr.op, ColumnRef("__l"), ColumnRef("__r"))
        return rebuilt.eval({"__l": left, "__r": right})
    if isinstance(expr, UnaryOp):
        value = eval_with_aggs(expr.operand, row, agg_values)
        return (not bool(value)) if expr.op == "not" else -value
    return expr.eval(row)


def vector_group_by(
    batch: ColumnBatch,
    group_exprs: Sequence[Expr],
    aggs: Sequence[AggCall],
) -> Tuple[Dict[Tuple, List[AggAccumulator]], Dict[Tuple, int]]:
    """Vectorized grouping over a column batch.

    Returns ``(groups, sample_index)``: accumulator states per group key
    (dict insertion order = first-seen order) and, per key, the batch row
    index of the group's first row (the row-mode "sample" row).  The
    accumulation loop mirrors :func:`update_agg_states` row by row in
    batch order, so float totals and min/max results are bit-identical to
    row mode.  Shared with the storage-side push-down fragment executor.
    Raises :class:`NotCompilable` when an expression cannot bind.
    """
    key_fns = [compile_batch_expr(expr, batch) for expr in group_exprs]
    specs = []
    for agg in aggs:
        arg_fn = (
            compile_batch_expr(agg.argument, batch)
            if agg.argument is not None
            else None
        )
        specs.append((arg_fn, agg.distinct, agg.func))
    groups: Dict[Tuple, List[AggAccumulator]] = {}
    sample_index: Dict[Tuple, int] = {}
    if len(key_fns) == 1:
        key_fn = key_fns[0]
        keys_of = lambda i: (key_fn(i),)  # noqa: E731 - hot path
    elif not key_fns:
        keys_of = lambda i: ()  # noqa: E731
    else:
        keys_of = lambda i: tuple(fn(i) for fn in key_fns)  # noqa: E731
    for i in range(batch.n):
        key = keys_of(i)
        states = groups.get(key)
        if states is None:
            states = new_agg_states(aggs)
            groups[key] = states
            sample_index[key] = i
        for state, (arg_fn, distinct, func) in zip(states, specs):
            if arg_fn is None:  # COUNT(*)
                state.count += 1
                continue
            value = arg_fn(i)
            if value is None:
                continue
            if distinct:
                state.distinct.add(value)
                continue
            state.count += 1
            if func in ("sum", "avg"):
                state.total += value
            elif func == "min":
                state.minimum = (
                    value if state.minimum is None else min(state.minimum, value)
                )
            elif func == "max":
                state.maximum = (
                    value if state.maximum is None else max(state.maximum, value)
                )
    return groups, sample_index


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


class QuerySession:
    """One client session: parse -> plan -> execute.

    ``parse_cache`` (usually shared across sessions by the proxy) avoids
    re-tokenizing repeated SQL text; the session-local plan cache reuses
    a SELECT's plan while a *stats token* — catalog size plus each
    referenced table's ``(row_count, index count)`` — matches, so a
    cached plan is always identical to what a fresh replan would build
    (row counts drive scan estimates, join choice, and push-down marks).
    """

    def __init__(
        self,
        engine: DBEngine,
        planner_config: Optional[PlannerConfig] = None,
        pushdown_runtime=None,
        parse_cache: Optional[ParseCache] = None,
        plan_cache_size: int = 128,
        batch_mode: bool = True,
    ):
        self.engine = engine
        self.planner_config = planner_config or PlannerConfig()
        self.planner = Planner(engine.catalog, self.planner_config)
        self.pushdown_runtime = pushdown_runtime
        self.parse_cache = parse_cache
        #: Columnar batch execution for the Scan/HashJoin/Aggregate spine
        #: (results stay byte-identical; off = pure row-at-a-time mode).
        self.batch_mode = batch_mode
        self.queries_executed = 0
        self.pages_scanned = 0
        self.index_lookups = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self._plan_cache_size = plan_cache_size
        self._plan_cache: "OrderedDict[str, Tuple[tuple, PlanNode]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Parse / plan caching
    # ------------------------------------------------------------------
    def _parse_entry(self, sql: str) -> Tuple[Any, int]:
        cache = self.parse_cache
        if cache is not None:
            return cache.entry(sql)
        return parse_entry(sql)

    def _stats_token(self, select: Select) -> Optional[tuple]:
        """Plan-validity token; None when a referenced table is unknown."""
        catalog = self.engine.catalog
        token = [len(catalog)]
        try:
            table = catalog.table(select.table.name)
            token.append((table.row_count, len(table.secondary)))
            for join in select.joins:
                table = catalog.table(join.table.name)
                token.append((table.row_count, len(table.secondary)))
        except QueryError:
            return None
        return tuple(token)

    def cached_plan(self, sql: str, statement: Select) -> PlanNode:
        """The plan for ``statement``, reused while its stats token holds."""
        token = self._stats_token(statement)
        cache = self._plan_cache
        if token is not None:
            entry = cache.get(sql)
            if entry is not None and entry[0] == token:
                self.plan_cache_hits += 1
                cache.move_to_end(sql)
                return entry[1]
        self.plan_cache_misses += 1
        plan = self.planner.plan_select(statement)
        if token is not None:
            cache[sql] = (token, plan)
            if len(cache) > self._plan_cache_size:
                cache.popitem(last=False)
        return plan

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, sql: str):
        """Generator: run one SQL statement; returns a QueryResult."""
        statement, nparams = self._parse_entry(sql)
        if nparams:
            raise QueryError(
                "statement has %d unbound parameter(s); use prepare()"
                % nparams
            )
        if isinstance(statement, Select):
            plan = self.cached_plan(sql, statement)
            return (yield from self.execute_plan(plan))
        if isinstance(statement, Insert):
            return (yield from self._execute_insert(statement))
        if isinstance(statement, Update):
            return (yield from self._execute_update(statement))
        if isinstance(statement, Delete):
            return (yield from self._execute_delete(statement))
        raise QueryError("unsupported statement %r" % statement)

    def prepare(self, sql: str) -> "PreparedStatement":
        """Parse once; returns a reusable handle with parameter binding."""
        statement, nparams = self._parse_entry(sql)
        return PreparedStatement(self, sql, statement, nparams)

    def execute_statement(self, statement):
        """Generator: run one already-parsed, fully-bound statement.

        The sharded proxy classifies statements at the AST level and
        dispatches the same bound AST to several shards' sessions; this
        entry point skips SQL-text caching (SELECTs re-plan each call).
        """
        if isinstance(statement, Select):
            plan = self.planner.plan_select(statement)
            return (yield from self.execute_plan(plan))
        if isinstance(statement, Insert):
            return (yield from self._execute_insert(statement))
        if isinstance(statement, Update):
            return (yield from self._execute_update(statement))
        if isinstance(statement, Delete):
            return (yield from self._execute_delete(statement))
        raise QueryError("unsupported statement %r" % statement)

    def execute_partial_select(self, statement: Select):
        """Generator: per-group *partial* aggregate states for one SELECT.

        The scatter-gather merge cannot recombine AVG or DISTINCT from
        finalized per-shard values; it needs the pre-finalize states
        (sum+count, distinct value sets).  This runs the plan up to and
        including the Aggregate node's grouping but skips finalize,
        returning ``(aggregates, [(key, sample_row, states), ...])`` for
        the router to merge with :func:`merge_agg_states`.
        """
        plan = self.planner.plan_select(statement)
        node = plan
        while isinstance(node, (Limit, Sort, Project)):
            node = node.child
        if not isinstance(node, Aggregate):
            raise QueryError("statement has no aggregate to run partially")
        agg = node
        child_rows, _ = yield from self._run(agg.child)
        yield from self.engine.cpu.consume(ROW_CPU * max(len(child_rows), 1))
        groups: Dict[Tuple, List[AggAccumulator]] = {}
        samples: Dict[Tuple, Dict[str, Any]] = {}
        if agg.from_partials and self._are_partials(child_rows):
            for group_key, states in child_rows:
                key, sample = group_key
                if key not in groups:
                    groups[key] = states
                    samples[key] = sample
                else:
                    merge_agg_states(groups[key], states, agg.aggregates)
        else:
            if self._are_partials(child_rows):
                raise QueryError("unexpected partial aggregates")
            for row in child_rows:
                key = tuple(expr.eval(row) for expr in agg.group_exprs)
                states = groups.get(key)
                if states is None:
                    states = new_agg_states(agg.aggregates)
                    groups[key] = states
                    samples[key] = row
                update_agg_states(states, agg.aggregates, row)
        self.queries_executed += 1
        return (
            list(agg.aggregates),
            [(key, samples[key], groups[key]) for key in groups],
        )

    def execute_point(self, point: "PointReadPlan", params: Sequence[Any]):
        """Generator: run a compiled prepared point read.

        Charges the same simulated CPU as the generic Project(IndexLookup)
        operator pair (``ROW_CPU * 2`` for the probe plus ``ROW_CPU`` for
        the single-row projection) and returns the byte-identical
        QueryResult, without plan binding or row-dict materialisation.
        """
        engine = self.engine
        table = engine.catalog.table(point.table_name)
        key = tuple(
            params[source] if is_param else source
            for is_param, source in point.key_source
        )
        self.index_lookups += 1
        self.queries_executed += 1
        rows: List[Tuple[Any, ...]] = []
        try:
            locator = table.lookup(key)
        except TypeError:
            locator = None
        if locator is None:
            yield from engine.cpu.consume(ROW_CPU * 3)
            return QueryResult(list(point.columns), rows)
        page_id = table.page_id(locator[0])
        # Resident pages fold their fetch charge into the statement
        # charge (one consume, not two); misses pay the full fetch.
        hit = engine.peek_page(page_id)
        if hit is not None:
            page, extra = hit
            yield from engine.cpu.consume(ROW_CPU * 3 + extra)
        else:
            yield from engine.cpu.consume(ROW_CPU * 3)
            page = yield from engine.fetch_page(page_id)
        try:
            raw = page.get(locator[1])
        except KeyError:
            raw = None
        if raw is not None:
            values = table.schema.decode(raw)
            rows.append(tuple(values[p] for p in point.positions))
        return QueryResult(list(point.columns), rows)

    def plan(self, sql: str) -> PlanNode:
        """Plan without executing (EXPLAIN)."""
        statement, _nparams = self._parse_entry(sql)
        if not isinstance(statement, Select):
            raise QueryError("only SELECT can be explained")
        return self.planner.plan_select(statement)

    def execute_plan(self, plan: PlanNode):
        """Generator: run a logical plan; returns a QueryResult."""
        rows, columns = yield from self._run(plan)
        self.queries_executed += 1
        if columns is None:
            # Plan without a Project on top (bare scan/join): expose the
            # qualified column keys directly.
            columns = sorted(
                {k for row in rows for k in row if not k.startswith("__")}
            )
        shaped = [tuple(row.get(c) for c in columns) for row in rows]
        return QueryResult(columns, shaped)

    # ------------------------------------------------------------------
    # Plan walking
    # ------------------------------------------------------------------
    def _run(self, node: PlanNode):
        if (
            self.batch_mode
            and isinstance(node, (SeqScan, HashJoin, Aggregate))
            and self._vector_ok(node)
        ):
            kind, payload = yield from self._vrun(node)
            if kind == "batch":
                return payload.to_rows(), None
            return payload, None  # aggregate output rows, or partials
        if isinstance(node, IndexLookup):
            rows = yield from self._run_index_lookup(node)
            return rows, None
        if isinstance(node, SeqScan):
            rows = yield from self._run_scan(node)
            return rows, None
        if isinstance(node, HashJoin):
            return (yield from self._run_hash_join(node))
        if isinstance(node, IndexNLJoin):
            return (yield from self._run_nl_join(node))
        if isinstance(node, Aggregate):
            return (yield from self._run_aggregate(node))
        if isinstance(node, Project):
            return (yield from self._run_project(node))
        if isinstance(node, Sort):
            return (yield from self._run_sort(node))
        if isinstance(node, Limit):
            rows, columns = yield from self._run(node.child)
            return rows[: node.count], columns
        raise QueryError("unknown plan node %r" % node)

    # -- scans ----------------------------------------------------------------
    def _run_scan(self, scan: SeqScan):
        """Generator: return row dicts (or partial agg states if pushed)."""
        if scan.pushdown and self.pushdown_runtime is not None:
            result = yield from self.pushdown_runtime.run_scan(scan)
            return result
        table = self.engine.catalog.table(scan.table_name)
        predicate = (
            compile_row_predicate(scan.filter) if scan.filter is not None else None
        )
        rows: List[Dict[str, Any]] = []
        for page_no in list(table.page_nos):
            page = yield from self.engine.fetch_page(table.page_id(page_no))
            yield from self.engine.cpu.consume(
                PAGE_CPU + ROW_CPU * page.row_count
            )
            self.pages_scanned += 1
            for _slot, raw in page.slots():
                values = table.schema.decode(raw)
                row = self._bind_row(scan.binding, table, values)
                if predicate is None or predicate(row):
                    rows.append(row)
        return rows

    def _run_index_lookup(self, node: IndexLookup):
        """Generator: fetch at most one row through the PK B-tree.

        Produces the exact row dict the filtered SeqScan would (same
        binding-qualified keys, same residual semantics) without paying
        the full-table page decode.
        """
        table = self.engine.catalog.table(node.table_name)
        key = tuple(expr.eval({}) for expr in node.key_exprs)
        yield from self.engine.cpu.consume(ROW_CPU * 2)
        self.index_lookups += 1
        rows: List[Dict[str, Any]] = []
        try:
            locator = table.lookup(key)
        except TypeError:
            # Key incomparable with stored keys (e.g. NULL or a type
            # mismatch): the scan's equality predicate would match
            # nothing, so the lookup matches nothing.
            locator = None
        if locator is None:
            return rows
        page_no, slot = locator
        page = yield from self.engine.fetch_page(table.page_id(page_no))
        try:
            raw = page.get(slot)
        except KeyError:
            return rows
        values = table.schema.decode(raw)
        row = self._bind_row(node.binding, table, values)
        if node.residual is None or node.residual.eval(row):
            rows.append(row)
        return rows

    @staticmethod
    def _bind_row(binding: str, table: Table, values: List[Any]) -> Dict[str, Any]:
        return {
            "%s.%s" % (binding, name): value
            for name, value in zip(table.schema.names, values)
        }

    # ------------------------------------------------------------------
    # Vectorized (columnar) execution of the Scan/HashJoin/Aggregate spine
    # ------------------------------------------------------------------
    # The decision to vectorize is entirely static (plan shape + column
    # resolution against the catalog), made before any page is fetched, so
    # a fallback to row mode never leaves half-executed simulation side
    # effects.  The verdict is cached on the plan node: cached plans and
    # prepared-statement templates pay the check once.

    def _vector_ok(self, node: PlanNode) -> bool:
        cached = getattr(node, "_vector_ok_", None)
        if cached is None:
            cached = self._vector_check(node)
            node._vector_ok_ = cached
        return cached

    def _vector_check(self, node: PlanNode) -> bool:
        if isinstance(node, Aggregate):
            child = node.child
            layout = self._batch_layout(child)
            if layout is None:
                return False
            child_partial = (
                isinstance(child, SeqScan)
                and child.partial_agg is not None
                and child.pushdown
                and self.pushdown_runtime is not None
            )
            if child_partial:
                # Merge path: storage already grouped; no engine-side
                # expression evaluation needed.
                return True
            exprs: List[Expr] = list(node.group_exprs)
            exprs.extend(
                agg.argument for agg in node.aggregates if agg.argument is not None
            )
            return self._exprs_vectorizable(exprs, layout)
        return self._batch_layout(node) is not None

    def _batch_layout(self, node: PlanNode) -> Optional[Tuple[str, ...]]:
        """The static column-key tuple a vectorized subtree produces, or
        None when the subtree must run in row mode."""
        if isinstance(node, SeqScan):
            try:
                table = self.engine.catalog.table(node.table_name)
            except QueryError:
                return None
            keys = tuple(
                "%s.%s" % (node.binding, name) for name in table.schema.names
            )
            if node.filter is not None and not self._exprs_vectorizable(
                [node.filter], keys
            ):
                return None
            return keys
        if isinstance(node, HashJoin):
            left, right = node.left, node.right
            # Partial-aggregate scans cannot feed a join (row mode raises;
            # falling back preserves the error).
            for side in (left, right):
                if isinstance(side, SeqScan) and side.partial_agg is not None:
                    return None
            left_keys = self._batch_layout(left)
            right_keys = self._batch_layout(right)
            if left_keys is None or right_keys is None:
                return None
            if not self._exprs_vectorizable(node.left_keys, left_keys):
                return None
            if not self._exprs_vectorizable(node.right_keys, right_keys):
                return None
            out = tuple(
                list(left_keys) + [k for k in right_keys if k not in left_keys]
            )
            if node.residual is not None and not self._exprs_vectorizable(
                [node.residual], out
            ):
                return None
            return out
        return None  # IndexNLJoin and anything else: row mode

    @staticmethod
    def _exprs_vectorizable(exprs: Sequence[Expr], keys: Tuple[str, ...]) -> bool:
        """Every node type compilable and every column reference resolvable
        against the static layout (Param/AggCall compile to the same
        lazily-raising behaviour row mode has)."""
        stack = list(exprs)
        while stack:
            expr = stack.pop()
            if isinstance(expr, ColumnRef):
                if resolve_column(keys, expr) is None:
                    return False
            elif isinstance(expr, BinOp):
                stack.append(expr.left)
                stack.append(expr.right)
            elif isinstance(expr, UnaryOp):
                if expr.op not in ("not", "-"):
                    return False
                stack.append(expr.operand)
            elif isinstance(expr, Between):
                stack.extend((expr.operand, expr.low, expr.high))
            elif isinstance(expr, (InList, Like)):
                stack.append(expr.operand)
            elif isinstance(expr, (Literal, Param, AggCall)):
                pass
            else:
                return False
        return True

    def _vrun(self, node: PlanNode):
        """Generator: vectorized subtree execution.

        Returns ``("batch", ColumnBatch)`` for scans/joins,
        ``("partials", [...])`` for pushed partial-aggregate scans, and
        ``("rows", [...])`` for aggregates (materialized row dicts,
        identical to the row operator's output).
        """
        if isinstance(node, SeqScan):
            return (yield from self._vrun_scan(node))
        if isinstance(node, HashJoin):
            return (yield from self._vrun_hash_join(node))
        if isinstance(node, Aggregate):
            return (yield from self._vrun_aggregate(node))
        raise QueryError("plan node %r is not vectorizable" % node)

    def _vrun_scan(self, scan: SeqScan):
        if scan.pushdown and self.pushdown_runtime is not None:
            result = yield from self.pushdown_runtime.run_scan(
                scan, as_batch=True
            )
            return result
        table = self.engine.catalog.table(scan.table_name)
        schema = table.schema
        keys = tuple("%s.%s" % (scan.binding, name) for name in schema.names)
        arrays: List[List[Any]] = [[] for _ in keys]
        for page_no in list(table.page_nos):
            page = yield from self.engine.fetch_page(table.page_id(page_no))
            yield from self.engine.cpu.consume(
                PAGE_CPU + ROW_CPU * page.row_count
            )
            self.pages_scanned += 1
            decode_page_into(schema, page, arrays)
        batch = ColumnBatch(keys, arrays)
        if scan.filter is not None:
            predicate = compile_batch_predicate(scan.filter, batch)
            batch = batch.gather(
                [i for i in range(batch.n) if predicate(i)]
            )
        return ("batch", batch)

    def _vrun_hash_join(self, join: HashJoin):
        _, left = yield from self._vrun(join.left)
        right_scan = join.right
        hash_pushed = (
            isinstance(right_scan, SeqScan)
            and right_scan.pushdown
            and right_scan.hash_keys
            and right_scan.partial_agg is None
            and self.pushdown_runtime is not None
        )
        right_key_rows: Optional[List[Tuple]] = None
        if hash_pushed:
            right_key_rows, right = yield from self.pushdown_runtime.run_hash_build(
                right_scan
            )
        else:
            _, right = yield from self._vrun(join.right)
        yield from self.engine.cpu.consume(ROW_CPU * (left.n + right.n))
        if right_key_rows is None:
            key_fns = [compile_batch_expr(e, right) for e in join.right_keys]
            if len(key_fns) == 1:
                fn = key_fns[0]
                right_key_rows = [(fn(j),) for j in range(right.n)]
            else:
                right_key_rows = [
                    tuple(fn(j) for fn in key_fns) for j in range(right.n)
                ]
        build: Dict[Tuple, List[int]] = {}
        for j, key in enumerate(right_key_rows):
            bucket = build.get(key)
            if bucket is None:
                build[key] = [j]
            else:
                bucket.append(j)
        left_fns = [compile_batch_expr(e, left) for e in join.left_keys]
        left_sel: List[int] = []
        right_sel: List[int] = []
        if len(left_fns) == 1:
            fn = left_fns[0]
            for i in range(left.n):
                matches = build.get((fn(i),))
                if matches:
                    for j in matches:
                        left_sel.append(i)
                        right_sel.append(j)
        else:
            for i in range(left.n):
                matches = build.get(tuple(fn(i) for fn in left_fns))
                if matches:
                    for j in matches:
                        left_sel.append(i)
                        right_sel.append(j)
        # Combined layout mirrors dict(left); update(right): left keys keep
        # their position, duplicated keys take the right side's values.
        out_keys = list(left.keys) + [k for k in right.keys if k not in left.keys]
        right_pos = {k: p for p, k in enumerate(right.keys)}
        out_arrays: List[List[Any]] = []
        for key in out_keys:
            if key in right_pos:
                source = right.arrays[right_pos[key]]
                out_arrays.append([source[j] for j in right_sel])
            else:
                source = left.arrays[left.keys.index(key)]
                out_arrays.append([source[i] for i in left_sel])
        out = ColumnBatch(out_keys, out_arrays, len(left_sel))
        if join.residual is not None:
            predicate = compile_batch_predicate(join.residual, out)
            out = out.gather([i for i in range(out.n) if predicate(i)])
        return ("batch", out)

    def _vrun_aggregate(self, agg: Aggregate):
        kind, payload = yield from self._vrun(agg.child)
        groups: Dict[Tuple, List[AggAccumulator]] = {}
        samples: Dict[Tuple, Dict[str, Any]] = {}
        if kind == "partials":
            partials = payload
            yield from self.engine.cpu.consume(
                ROW_CPU * max(len(partials), 1)
            )
            if agg.from_partials and self._are_partials(partials):
                for group_key, states in partials:
                    key, sample = group_key
                    if key not in groups:
                        groups[key] = states
                        samples[key] = sample
                    else:
                        merge_agg_states(groups[key], states, agg.aggregates)
            elif self._are_partials(partials):
                raise QueryError("unexpected partial aggregates")
            # An empty partials list degenerates to an empty input.
        else:
            batch = payload
            yield from self.engine.cpu.consume(ROW_CPU * max(batch.n, 1))
            groups, sample_index = vector_group_by(
                batch, agg.group_exprs, agg.aggregates
            )
            samples = {
                key: batch.row_dict(i) for key, i in sample_index.items()
            }
        if not groups and not agg.group_exprs:
            groups[()] = new_agg_states(agg.aggregates)
            samples[()] = {}
        out: List[Dict[str, Any]] = []
        for key, states in groups.items():
            agg_values = finalize_agg_states(states, agg.aggregates)
            row = dict(samples[key])
            row["__aggs__"] = agg_values
            out.append(row)
        return ("rows", out)

    # -- joins ----------------------------------------------------------------
    def _run_hash_join(self, join: HashJoin):
        left_rows, _ = yield from self._run(join.left)
        right_rows, _ = yield from self._run(join.right)
        if self._are_partials(left_rows) or self._are_partials(right_rows):
            raise QueryError("partial aggregates cannot feed a join")
        yield from self.engine.cpu.consume(
            ROW_CPU * (len(left_rows) + len(right_rows))
        )
        build: Dict[Tuple, List[Dict[str, Any]]] = {}
        for row in right_rows:
            key = tuple(expr.eval(row) for expr in join.right_keys)
            build.setdefault(key, []).append(row)
        out: List[Dict[str, Any]] = []
        for row in left_rows:
            key = tuple(expr.eval(row) for expr in join.left_keys)
            for match in build.get(key, ()):
                joined = dict(row)
                joined.update(match)
                if join.residual is None or join.residual.eval(joined):
                    out.append(joined)
        return out, None

    def _run_nl_join(self, join: IndexNLJoin):
        outer_rows, _ = yield from self._run(join.outer)
        table = self.engine.catalog.table(join.inner_table)
        out: List[Dict[str, Any]] = []
        for row in outer_rows:
            prefix = tuple(expr.eval(row) for expr in join.outer_keys)
            yield from self.engine.cpu.consume(ROW_CPU * 2)
            locators = []
            if join.index_name == "":
                if len(prefix) == len(table.key_columns):
                    locator = table.lookup(prefix)
                    if locator is not None:
                        locators.append(locator)
                else:
                    for _key, locator in table.pk_index.range(prefix, None):
                        if _key[: len(prefix)] != prefix:
                            break
                        locators.append(locator)
            else:
                for _key, locator in table.lookup_secondary(join.index_name, prefix):
                    locators.append(locator)
            for page_no, slot in locators:
                page = yield from self.engine.fetch_page(table.page_id(page_no))
                try:
                    raw = page.get(slot)
                except KeyError:
                    continue
                values = table.schema.decode(raw)
                inner = self._bind_row(join.inner_binding, table, values)
                if join.inner_filter is not None and not join.inner_filter.eval(inner):
                    continue
                joined = dict(row)
                joined.update(inner)
                if join.residual is None or join.residual.eval(joined):
                    out.append(joined)
        return out, None

    # -- aggregation -------------------------------------------------------------
    @staticmethod
    def _are_partials(rows: List[Any]) -> bool:
        return bool(rows) and isinstance(rows[0], tuple) and len(rows[0]) == 2 and \
            isinstance(rows[0][1], list) and (
                not rows[0][1] or isinstance(rows[0][1][0], AggAccumulator)
            )

    def _run_aggregate(self, agg: Aggregate):
        child_rows, _ = yield from self._run(agg.child)
        groups: Dict[Tuple, List[AggAccumulator]] = {}
        group_samples: Dict[Tuple, Dict[str, Any]] = {}
        if agg.from_partials and self._are_partials(child_rows):
            # Secondary aggregation over storage-produced partials.
            yield from self.engine.cpu.consume(ROW_CPU * max(len(child_rows), 1))
            for group_key, states in child_rows:
                key, sample = group_key
                if key not in groups:
                    groups[key] = states
                    group_samples[key] = sample
                else:
                    merge_agg_states(groups[key], states, agg.aggregates)
        else:
            if self._are_partials(child_rows):
                raise QueryError("unexpected partial aggregates")
            yield from self.engine.cpu.consume(ROW_CPU * max(len(child_rows), 1))
            for row in child_rows:
                key = tuple(expr.eval(row) for expr in agg.group_exprs)
                states = groups.get(key)
                if states is None:
                    states = new_agg_states(agg.aggregates)
                    groups[key] = states
                    group_samples[key] = row
                update_agg_states(states, agg.aggregates, row)
        if not groups and not agg.group_exprs:
            # Global aggregate over zero rows still yields one output row.
            groups[()] = new_agg_states(agg.aggregates)
            group_samples[()] = {}
        out: List[Dict[str, Any]] = []
        for key, states in groups.items():
            agg_values = finalize_agg_states(states, agg.aggregates)
            row = dict(group_samples[key])
            row["__aggs__"] = agg_values
            out.append(row)
        return out, None

    # -- projection / sort ----------------------------------------------------
    def _run_project(self, project: Project):
        child_rows, _ = yield from self._run(project.child)
        yield from self.engine.cpu.consume(ROW_CPU * max(len(child_rows), 1))
        if project.star:
            columns = (
                sorted(k for k in child_rows[0] if not k.startswith("__"))
                if child_rows
                else []
            )
            # Keep dict shape so Sort above Project can evaluate keys.
            return child_rows, columns
        columns = [item.output_name for item in project.items]
        out_rows: List[Dict[str, Any]] = []
        for row in child_rows:
            agg_values = row.get("__aggs__", {})
            out = {}
            for item, name in zip(project.items, columns):
                out[name] = eval_with_aggs(item.expr, row, agg_values)
            # Retain source columns so ORDER BY can reference them.
            for key, value in row.items():
                if key != "__aggs__" and key not in out:
                    out[key] = value
            out["__columns__"] = columns
            out["__aggs__"] = agg_values
            out_rows.append(out)
        return out_rows, columns

    def _run_sort(self, sort: Sort):
        child_rows, columns = yield from self._run(sort.child)
        import math

        count = max(len(child_rows), 1)
        yield from self.engine.cpu.consume(
            ROW_CPU * count * max(1.0, math.log2(count))
        )

        def sort_key(row):
            parts = []
            for expr, desc in sort.order_by:
                value = eval_with_aggs(expr, row, row.get("__aggs__", {}))
                parts.append(_Reversible(value, desc))
            return tuple(parts)

        child_rows.sort(key=sort_key)
        return child_rows, columns

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _execute_insert(self, stmt: Insert):
        table = self.engine.catalog.table(stmt.table)
        txn = self.engine.begin()
        inserted = 0
        for row in stmt.rows:
            if stmt.columns is not None:
                values = [None] * len(table.schema)
                for column, value in zip(stmt.columns, row):
                    values[table.schema.position(column)] = value
            else:
                values = list(row)
            yield from self.engine.insert(txn, stmt.table, values)
            inserted += 1
        yield from self.engine.commit(txn)
        return QueryResult(["inserted"], [(inserted,)])

    def _matching_keys(self, table: Table, where):
        """Generator: PKs of rows matching ``where`` (via a scan)."""
        scan = SeqScan(
            estimated_rows=table.row_count,
            table_name=table.name,
            binding=table.name,
            filter=where,
            projection=None,
        )
        rows = yield from self._run_scan(scan)
        keys = []
        for row in rows:
            keys.append(
                tuple(row["%s.%s" % (table.name, c)] for c in table.key_columns)
            )
        return keys

    def _execute_update(self, stmt: Update):
        table = self.engine.catalog.table(stmt.table)
        keys = yield from self._matching_keys(table, stmt.where)
        txn = self.engine.begin()
        for key in keys:
            current = yield from self.engine.read_row(
                txn, stmt.table, key, for_update=True
            )
            row = {
                "%s.%s" % (table.name, name): value
                for name, value in zip(table.schema.names, current)
            }
            changes = {
                column: expr.eval(row) for column, expr in stmt.assignments.items()
            }
            yield from self.engine.update(txn, stmt.table, key, changes)
        yield from self.engine.commit(txn)
        return QueryResult(["updated"], [(len(keys),)])

    def _execute_delete(self, stmt: Delete):
        table = self.engine.catalog.table(stmt.table)
        keys = yield from self._matching_keys(table, stmt.where)
        txn = self.engine.begin()
        for key in keys:
            yield from self.engine.delete(txn, stmt.table, key)
        yield from self.engine.commit(txn)
        return QueryResult(["deleted"], [(len(keys),)])


@dataclass
class PointReadPlan:
    """Compiled recipe for a prepared primary-key point read.

    A prepared ``Project(IndexLookup)`` template with no residual filter
    and pure column-reference select items reduces to: build the key
    tuple from the parameter vector, probe the PK B-tree, decode one
    row, and gather the projected schema positions.  Executing the
    recipe (``QuerySession.execute_point``) skips per-execution plan
    binding and row-dict materialisation while charging the same
    simulated CPU and producing the byte-identical ``QueryResult`` the
    generic operator path would.
    """

    table_name: str = ""
    #: Per key column: (True, param_index) or (False, literal_value).
    key_source: Tuple[Tuple[bool, Any], ...] = ()
    #: Schema positions of the projected output columns, in item order.
    positions: Tuple[int, ...] = ()
    columns: List[str] = field(default_factory=list)


def compile_point_plan(template: PlanNode, engine: DBEngine):
    """A :class:`PointReadPlan` for ``template``, or None if ineligible."""
    if not isinstance(template, Project) or template.star:
        return None
    lookup = template.child
    if not isinstance(lookup, IndexLookup) or lookup.residual is not None:
        return None
    try:
        table = engine.catalog.table(lookup.table_name)
    except QueryError:
        return None
    key_source: List[Tuple[bool, Any]] = []
    for expr in lookup.key_exprs:
        if isinstance(expr, Param):
            key_source.append((True, expr.index))
        elif isinstance(expr, Literal):
            key_source.append((False, expr.value))
        else:
            return None
    schema = table.schema
    positions: List[int] = []
    columns: List[str] = []
    for item in template.items:
        expr = item.expr
        if not isinstance(expr, ColumnRef):
            return None
        if expr.table is not None and expr.table != lookup.binding:
            return None
        if not schema.has_column(expr.name):
            return None
        positions.append(schema.position(expr.name))
        columns.append(item.output_name)
    if len(set(columns)) != len(columns):
        # Duplicate output names shape through the row dict in the
        # generic path (last writer wins); keep that path authoritative.
        return None
    return PointReadPlan(
        table_name=lookup.table_name,
        key_source=tuple(key_source),
        positions=tuple(positions),
        columns=columns,
    )


class PreparedStatement:
    """A parsed statement plus its reusable, parameter-bindable plan.

    SELECTs are planned once as a *template* (Param placeholders stay in
    the plan) and re-validated against the session's stats token; each
    ``execute(*params)`` binds a cheap structural-sharing copy.  A
    template that compiles to a :class:`PointReadPlan` executes through
    the point-read fast path instead.  DML binds at the AST level and
    runs the normal DML path.
    """

    __slots__ = ("session", "sql", "statement", "param_count",
                 "is_select", "_template", "_template_token", "_point")

    def __init__(self, session: QuerySession, sql: str, statement: Any,
                 nparams: int):
        self.session = session
        self.sql = sql
        self.statement = statement
        self.param_count = nparams
        self.is_select = isinstance(statement, Select)
        self._template: Optional[PlanNode] = None
        self._template_token: Optional[tuple] = None
        self._point: Optional[PointReadPlan] = None

    def _refresh_template(self, token: Optional[tuple]) -> PlanNode:
        template = self.session.planner.plan_select(self.statement)
        self._template = template
        self._template_token = token
        self._point = (
            compile_point_plan(template, self.session.engine)
            if token is not None else None
        )
        return template

    def _select_plan(self, params: Tuple[Any, ...]) -> PlanNode:
        session = self.session
        token = session._stats_token(self.statement)
        template = self._template
        if template is None or token is None or token != self._template_token:
            template = self._refresh_template(token)
        if not params:
            return template
        return bind_plan(template, params)

    def execute(self, *params):
        """Generator: run with ``params`` bound; returns a QueryResult."""
        if len(params) != self.param_count:
            raise QueryError(
                "prepared statement wants %d parameter(s), got %d"
                % (self.param_count, len(params))
            )
        session = self.session
        if self.is_select:
            token = session._stats_token(self.statement)
            if (self._template is None or token is None
                    or token != self._template_token):
                self._refresh_template(token)
            if self._point is not None:
                return (yield from session.execute_point(self._point, params))
            template = self._template
            plan = bind_plan(template, params) if params else template
            return (yield from session.execute_plan(plan))
        statement = (
            bind_statement(self.statement, params) if params
            else self.statement
        )
        if isinstance(statement, Insert):
            return (yield from session._execute_insert(statement))
        if isinstance(statement, Update):
            return (yield from session._execute_update(statement))
        if isinstance(statement, Delete):
            return (yield from session._execute_delete(statement))
        raise QueryError("unsupported statement %r" % statement)


class _Reversible:
    """Sort-key wrapper supporting DESC order."""

    __slots__ = ("value", "desc")

    def __init__(self, value, desc: bool):
        self.value = value
        self.desc = desc

    def __lt__(self, other: "_Reversible") -> bool:
        a, b = self.value, other.value
        if a is None or b is None:
            return (b is None) if self.desc else (a is None and b is not None)
        if self.desc:
            return b < a
        return a < b

    def __eq__(self, other: "_Reversible") -> bool:
        return self.value == other.value
