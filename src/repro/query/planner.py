"""Query planner: AST -> logical plan, with push-down marking.

Planning steps (paper Section VI-A):

1. Bind table references against the catalog.
2. Split the WHERE conjunction: single-binding conjuncts become scan
   filters; cross-binding equi-conjuncts become join keys; the rest become
   join residuals.
3. Choose a join algorithm per join: index nested-loop when the join keys
   form a prefix of an inner index and the estimated outer cardinality is
   small; hash join otherwise.  ``force_hash_joins`` reproduces the
   paper's observation that enabling PQ steers plans toward hash joins
   (whose bulk inner scans are pushable); it also serves as the Fig. 14
   "plan change only" hint.
4. Mark scans push-down eligible: single table reference, simple filter,
   no aggregate in the filter, the session flag on, and the fragment
   passing the eligibility test - by default a cost estimate comparing
   the fragment's result wire bytes against the page bytes the engine
   would otherwise pull (``pushdown_row_threshold`` remains as an
   explicit row-count override reproducing the paper's production
   behaviour).  A single-table aggregate query additionally pushes
   partial aggregation; the build side of a hash join carries its join
   keys (``SeqScan.hash_keys``) so the batch executor can ship the hash
   build storage-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common import PAGE_SIZE, QueryError
from ..engine.table import Catalog, Table
from .ast import (
    AggCall,
    BinOp,
    ColumnRef,
    Expr,
    JoinClause,
    Select,
    SelectItem,
    TableRef,
)
from .plan import (
    Aggregate,
    HashJoin,
    IndexLookup,
    IndexNLJoin,
    Limit,
    PlanNode,
    Project,
    SeqScan,
    Sort,
)

__all__ = ["Planner", "PlannerConfig", "match_view_select",
           "ROW_WIRE_BYTES", "GROUP_WIRE_BYTES"]

#: Approximate wire size of one projected row shipped back from storage.
#: Canonical here (the planner's cost model and the push-down runtime's
#: dispatch accounting must agree); re-exported by ``pushdown``.
ROW_WIRE_BYTES = 48
#: Approximate wire size of one partial-aggregate group.
GROUP_WIRE_BYTES = 96


@dataclass
class PlannerConfig:
    """Session knobs affecting plan shape and push-down marking."""

    enable_pushdown: bool = False
    #: Explicit row-count override for push-down eligibility (the paper's
    #: production behaviour).  ``None`` (default) selects the cost-based
    #: estimate: push when the fragment's result wire bytes are well
    #: under the page bytes the engine would otherwise pull.
    pushdown_row_threshold: Optional[int] = None
    #: Cost-based eligibility: minimum pages to amortize a dispatch.
    pushdown_min_pages: int = 4
    #: Cost-based eligibility: result bytes must be under this fraction
    #: of the scanned page bytes.
    pushdown_wire_ratio: float = 0.5
    #: Prefer hash joins (PQ-friendly plans / Fig 14 plan hint).
    force_hash_joins: bool = False
    #: Outer-cardinality bound under which index NL join is chosen.
    nl_join_outer_limit: int = 2000
    #: Plan single-table full-PK-equality filters as unique B-tree point
    #: lookups instead of sequential scans.
    enable_index_lookup: bool = True


def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten an AND tree into its conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_together(conjuncts: List[Expr]) -> Optional[Expr]:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BinOp("and", result, conjunct)
    return result


def match_view_select(query: Select, view: Select) -> Optional[List[int]]:
    """View-eligibility match: can ``view`` state answer ``query`` exactly?

    Returns, for each query select item, the index of the view item
    producing it, or None when the query is not view-eligible.  The AST
    nodes are frozen dataclasses, so structural equality is exact: the
    query must read the same table with the *same* WHERE and GROUP BY,
    and every select item / ORDER BY expression must be one the view
    already materializes (view items, group columns, or its aggregate
    calls).  The query's own aliases, ORDER BY, and LIMIT are applied at
    serve time by the maintainer.
    """
    if query.star or view.star:
        return None
    if query.joins or view.joins:
        return None
    if (
        query.table.name != view.table.name
        or query.table.binding != view.table.binding
    ):
        return None
    if query.where != view.where:
        return None
    if list(query.group_by) != list(view.group_by):
        return None

    view_exprs = [item.expr for item in view.items]

    def resolves(expr: Expr) -> bool:
        if expr in view_exprs:
            return True
        return any(expr == group_expr for group_expr in view.group_by)

    mapping: List[int] = []
    for item in query.items:
        try:
            mapping.append(view_exprs.index(item.expr))
        except ValueError:
            return None
    for order_expr, _desc in query.order_by:
        if not resolves(order_expr):
            return None
    return mapping


class Planner:
    def __init__(self, catalog: Catalog, config: Optional[PlannerConfig] = None):
        self.catalog = catalog
        self.config = config or PlannerConfig()

    # ------------------------------------------------------------------
    # Binding helpers
    # ------------------------------------------------------------------
    def _bindings_of(self, expr: Expr, binding_tables: Dict[str, Table]):
        """The set of table bindings an expression touches."""
        bindings = set()
        for key in expr.columns():
            if "." in key:
                bindings.add(key.split(".", 1)[0])
            else:
                name = key
                owners = [
                    b for b, t in binding_tables.items() if t.schema.has_column(name)
                ]
                if len(owners) == 1:
                    bindings.add(owners[0])
                elif len(owners) > 1:
                    raise QueryError("ambiguous column %r" % name)
                else:
                    raise QueryError("unknown column %r" % name)
        return bindings

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def plan_select(self, select: Select) -> PlanNode:
        binding_tables: Dict[str, Table] = {}
        order: List[str] = []

        def bind(ref: TableRef):
            table = self.catalog.table(ref.name)
            if ref.binding in binding_tables:
                raise QueryError("duplicate binding %r" % ref.binding)
            binding_tables[ref.binding] = table
            order.append(ref.binding)

        bind(select.table)
        for join in select.joins:
            bind(join.table)

        conjuncts = split_conjuncts(select.where)
        for join in select.joins:
            conjuncts.extend(split_conjuncts(join.condition))

        # Partition conjuncts by the bindings they reference.
        scan_filters: Dict[str, List[Expr]] = {b: [] for b in binding_tables}
        multi: List[Expr] = []
        for conjunct in conjuncts:
            bindings = self._bindings_of(conjunct, binding_tables)
            if len(bindings) == 1:
                scan_filters[bindings.pop()].append(conjunct)
            else:
                multi.append(conjunct)

        # Projection pruning: which columns does anything downstream need?
        needed: Dict[str, set] = {b: set() for b in binding_tables}
        if select.star:
            for binding, table in binding_tables.items():
                needed[binding].update(table.schema.names)
        else:
            exprs: List[Expr] = [item.expr for item in select.items]
            exprs.extend(select.group_by)
            exprs.extend(expr for expr, _ in select.order_by)
            exprs.extend(multi)
            for b, conj in scan_filters.items():
                exprs.extend(conj)
            for expr in exprs:
                for key in expr.columns():
                    if "." in key:
                        binding, column = key.split(".", 1)
                        if binding in needed:
                            needed[binding].add(column)
                    else:
                        for binding, table in binding_tables.items():
                            if table.schema.has_column(key):
                                needed[binding].add(key)

        def scan_of(binding: str) -> SeqScan:
            table = binding_tables[binding]
            filt = and_together(scan_filters[binding])
            projection = sorted(needed[binding]) or None
            return SeqScan(
                estimated_rows=self._estimate_scan(table, scan_filters[binding]),
                table_name=table.name,
                binding=binding,
                filter=filt,
                projection=projection,
            )

        # Build the join tree left-deep in FROM order.  A single-table
        # query whose filter pins the whole primary key with constant
        # equalities becomes a unique point lookup instead of a scan.
        self._inner_filters = scan_filters
        plan: PlanNode = None
        if len(order) == 1 and self.config.enable_index_lookup:
            plan = self._point_lookup(
                order[0], binding_tables[order[0]], scan_filters[order[0]]
            )
        if plan is None:
            plan = scan_of(order[0])
        joined = {order[0]}
        for binding in order[1:]:
            plan = self._plan_join(
                plan, binding, binding_tables, joined, multi, scan_of
            )
            joined.add(binding)
        residual = and_together(
            [c for c in multi if self._bindings_of(c, binding_tables) <= joined]
        )
        # Any leftover residual (shouldn't exist in a left-deep chain) is
        # attached as a final filter through a degenerate hash join... not
        # needed: _plan_join consumes conjuncts as bindings complete.

        # Aggregation.
        agg_calls = self._collect_aggregates(select)
        if agg_calls or select.group_by:
            single_scan = isinstance(plan, SeqScan)
            pushable_aggs = single_scan and self._aggs_are_pushable(agg_calls)
            groups_estimate = max(1, len(select.group_by) * 10)
            if (
                single_scan
                and pushable_aggs
                and self._scan_pushable(
                    plan,
                    binding_tables[plan.binding],
                    groups_estimate=groups_estimate,
                )
            ):
                plan.pushdown = True
                plan.partial_agg = (list(select.group_by), agg_calls)
                plan = Aggregate(
                    estimated_rows=max(1, len(select.group_by) * 10),
                    child=plan,
                    group_exprs=list(select.group_by),
                    aggregates=agg_calls,
                    from_partials=True,
                )
            else:
                plan = Aggregate(
                    estimated_rows=max(1, len(select.group_by) * 10),
                    child=plan,
                    group_exprs=list(select.group_by),
                    aggregates=agg_calls,
                )
        # Mark remaining scans for plain (non-aggregating) push-down.
        self._mark_scans(plan, binding_tables)

        plan = Project(
            estimated_rows=plan.estimated_rows,
            child=plan,
            items=list(select.items),
            star=select.star,
        )
        if select.order_by:
            plan = Sort(
                estimated_rows=plan.estimated_rows,
                child=plan,
                order_by=list(select.order_by),
            )
        if select.limit is not None:
            plan = Limit(
                estimated_rows=min(plan.estimated_rows, select.limit),
                child=plan,
                count=select.limit,
            )
        return plan

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _plan_join(self, left, binding, binding_tables, joined, multi, scan_of):
        table = binding_tables[binding]
        available = joined | {binding}
        # Conjuncts that become evaluable once this binding joins in.
        usable = [
            c
            for c in multi
            if self._bindings_of(c, binding_tables) <= available
            and binding in self._bindings_of(c, binding_tables)
        ]
        for conjunct in usable:
            multi.remove(conjunct)
        equi_pairs: List[Tuple[Expr, Expr]] = []
        residuals: List[Expr] = []
        for conjunct in usable:
            pair = self._as_equi_pair(conjunct, binding, binding_tables)
            if pair is not None:
                equi_pairs.append(pair)
            else:
                residuals.append(conjunct)
        if not equi_pairs:
            raise QueryError(
                "join with %s has no equi-join condition" % binding
            )
        inner_columns = [
            right.name for _, right in equi_pairs if isinstance(right, ColumnRef)
        ]
        index_name = self._matching_index(table, inner_columns)
        use_nl = (
            not self.config.force_hash_joins
            and index_name is not None
            and left.estimated_rows <= self.config.nl_join_outer_limit
        )
        estimated = max(left.estimated_rows, 1)
        if use_nl:
            # The inner side has no scan node, so its single-table filter
            # must ride the join and apply per probed row.
            inner_filter = and_together(self._inner_filters[binding])
            return IndexNLJoin(
                estimated_rows=estimated,
                outer=left,
                inner_table=table.name,
                inner_binding=binding,
                outer_keys=[l for l, _ in equi_pairs],
                inner_columns=inner_columns,
                inner_filter=inner_filter,
                residual=and_together(residuals),
                index_name=index_name,
            )
        right_scan = scan_of(binding)
        right_keys = [r for _, r in equi_pairs]
        # Planner metadata for the widened push-down: the build side of a
        # hash join knows its join keys, so a marked build scan can be
        # executed storage-side as a hash-build fragment.
        right_scan.hash_keys = list(right_keys)
        return HashJoin(
            estimated_rows=max(estimated, right_scan.estimated_rows),
            left=left,
            right=right_scan,
            left_keys=[l for l, _ in equi_pairs],
            right_keys=right_keys,
            residual=and_together(residuals),
        )

    def _as_equi_pair(self, conjunct, inner_binding, binding_tables):
        """(outer_expr, inner_column_ref) if the conjunct is outer = inner."""
        if not (isinstance(conjunct, BinOp) and conjunct.op == "="):
            return None
        left_b = self._bindings_of(conjunct.left, binding_tables)
        right_b = self._bindings_of(conjunct.right, binding_tables)
        if right_b == {inner_binding} and inner_binding not in left_b:
            return (conjunct.left, conjunct.right)
        if left_b == {inner_binding} and inner_binding not in right_b:
            return (conjunct.right, conjunct.left)
        return None

    def _point_lookup(
        self, binding: str, table: Table, filters: List[Expr]
    ) -> Optional[IndexLookup]:
        """An IndexLookup leaf when ``filters`` pin the full primary key.

        Eligible conjuncts are ``column = constant`` (either side) where
        the constant side references no columns and no aggregates — a
        literal, a parameter, or arithmetic over them.  One equality per
        key column feeds the lookup key; everything else (extra
        equalities on the same column included) stays as a residual
        filter on the fetched row, so results match the scan exactly.
        """
        key_exprs: Dict[str, Expr] = {}
        residual: List[Expr] = []
        for conjunct in filters:
            column = None
            if isinstance(conjunct, BinOp) and conjunct.op == "=":
                left, right = conjunct.left, conjunct.right
                if isinstance(left, ColumnRef) and self._is_constant(right):
                    column, const = left, right
                elif isinstance(right, ColumnRef) and self._is_constant(left):
                    column, const = right, left
            if column is not None:
                name = column.name.split(".")[-1]
                if name in table.key_columns and name not in key_exprs:
                    key_exprs[name] = const
                    continue
            residual.append(conjunct)
        if len(key_exprs) != len(table.key_columns):
            return None
        return IndexLookup(
            estimated_rows=1,
            table_name=table.name,
            binding=binding,
            key_exprs=[key_exprs[name] for name in table.key_columns],
            residual=and_together(residual),
        )

    @staticmethod
    def _is_constant(expr: Expr) -> bool:
        return not expr.columns() and not expr.contains_aggregate()

    def _matching_index(self, table: Table, columns: List[str]) -> Optional[str]:
        """'' for the PK, an index name, or None if nothing matches."""
        normalized = [c.split(".")[-1] for c in columns]
        if list(table.key_columns[: len(normalized)]) == normalized:
            return ""
        for name, index in table.secondary.items():
            if list(index.columns[: len(normalized)]) == normalized:
                return name
        return None

    # ------------------------------------------------------------------
    # Aggregates & push-down marking
    # ------------------------------------------------------------------
    def _collect_aggregates(self, select: Select) -> List[AggCall]:
        calls: List[AggCall] = []

        def walk(expr: Expr):
            if isinstance(expr, AggCall):
                if expr not in calls:
                    calls.append(expr)
                return
            for attr in ("left", "right", "operand", "low", "high", "argument"):
                child = getattr(expr, attr, None)
                if isinstance(child, Expr):
                    walk(child)

        for item in select.items:
            walk(item.expr)
        return calls

    def _aggs_are_pushable(self, aggs: List[AggCall]) -> bool:
        """All supported aggregates partially aggregate now: DISTINCT
        states ship their value sets (mergeable, like the scatter-gather
        path), accounted per value in the wire model."""
        return True

    def _estimate_scan(self, table: Table, filters: List[Expr]) -> int:
        rows = max(table.row_count, 1)
        # Crude selectivity: each conjunct keeps ~1/3 of rows.
        for _ in filters:
            rows = max(1, rows // 3)
        return rows

    def _scan_pushable(
        self,
        scan: SeqScan,
        table: Table,
        groups_estimate: Optional[int] = None,
    ) -> bool:
        if not self.config.enable_pushdown:
            return False
        if scan.filter is not None and scan.filter.contains_aggregate():
            return False
        threshold = self.config.pushdown_row_threshold
        if threshold is not None:
            # The paper thresholds on rows *scanned* by the fragment
            # (output selectivity is irrelevant: a selective filter over
            # a big table is the best push-down case).
            return table.row_count >= threshold
        # Cost-based eligibility (the paper's first future-work item):
        # push when the fragment's estimated result wire bytes are well
        # under the page bytes the engine would otherwise pull through
        # storage, and the scan spans enough pages to amortize a task
        # dispatch round trip.  Partial aggregation ships groups, not
        # rows, so grouped fragments almost always win once big enough.
        pages = max(1, len(table.page_nos))
        if pages < self.config.pushdown_min_pages:
            return False
        if groups_estimate is not None:
            out_bytes = GROUP_WIRE_BYTES * max(1, groups_estimate)
        else:
            out_bytes = ROW_WIRE_BYTES * max(1, scan.estimated_rows)
        return out_bytes <= pages * PAGE_SIZE * self.config.pushdown_wire_ratio

    def _mark_scans(self, node: PlanNode, binding_tables: Dict[str, Table]):
        if isinstance(node, SeqScan):
            if not node.pushdown:
                table = binding_tables[node.binding]
                node.pushdown = self._scan_pushable(node, table)
            return
        for attr in ("child", "left", "right", "outer"):
            child = getattr(node, attr, None)
            if isinstance(child, PlanNode):
                self._mark_scans(child, binding_tables)
