"""SQL front end, planner, executor, and the push-down framework.

- :mod:`repro.query.lexer` / :mod:`repro.query.parser` - the SQL subset
- :mod:`repro.query.ast` - expressions and statements
- :mod:`repro.query.plan` / :mod:`repro.query.planner` - logical plans,
  join choice, push-down marking
- :mod:`repro.query.executor` - single-threaded volcano executor
- :mod:`repro.query.pushdown` - PQ task split/dispatch/merge
"""

from .ast import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    Expr,
    InList,
    Like,
    Literal,
    Select,
    SelectItem,
    TableRef,
    UnaryOp,
)
from .cache import ParseCache
from .executor import PreparedStatement, QueryResult, QuerySession
from .parser import parse
from .plan import explain
from .planner import Planner, PlannerConfig
from .pushdown import PushdownRuntime

__all__ = [
    "parse",
    "ParseCache",
    "PreparedStatement",
    "QuerySession",
    "QueryResult",
    "Planner",
    "PlannerConfig",
    "PushdownRuntime",
    "explain",
    "Expr",
    "ColumnRef",
    "Literal",
    "BinOp",
    "UnaryOp",
    "Between",
    "InList",
    "Like",
    "AggCall",
    "SelectItem",
    "TableRef",
    "Select",
]
