"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..common import QueryError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "as",
    "and", "or", "not", "between", "in", "like", "join", "inner", "on",
    "insert", "into", "values", "update", "set", "delete", "asc", "desc",
    "distinct", "null", "count", "sum", "avg", "min", "max", "having",
}

_PUNCT = ("<=", ">=", "!=", "<>", "(", ")", ",", "*", "+", "-", "/", "=",
          "<", ">", ".", ";", "?")


@dataclass(frozen=True)
class Token:
    """One lexical token: kind in {keyword,name,number,string,punct,end}."""

    kind: str
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word

    def is_punct(self, symbol: str) -> bool:
        return self.kind == "punct" and self.value == symbol


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises QueryError with position on bad input."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        # String literal.
        if char == "'":
            end = index + 1
            parts = []
            while True:
                if end >= length:
                    raise QueryError("unterminated string at %d" % index)
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            tokens.append(Token("string", "".join(parts), index))
            index = end + 1
            continue
        # Number.
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # A dot not followed by a digit terminates the number
                    # (e.g. "t1.c" after "1" is impossible, but be strict).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            raw = text[index:end]
            value = float(raw) if "." in raw else int(raw)
            tokens.append(Token("number", value, index))
            index = end
            continue
        # Identifier or keyword.
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, index))
            else:
                tokens.append(Token("name", word, index))
            index = end
            continue
        # Punctuation (longest match first).
        for symbol in _PUNCT:
            if text.startswith(symbol, index):
                value = "!=" if symbol == "<>" else symbol
                tokens.append(Token("punct", value, index))
                index += len(symbol)
                break
        else:
            raise QueryError("unexpected character %r at %d" % (char, index))
    tokens.append(Token("end", None, length))
    return tokens
