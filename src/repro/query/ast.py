"""Abstract syntax for the supported SQL subset.

Expressions are a small algebra (columns, literals, arithmetic, boolean
logic, BETWEEN/IN/LIKE, aggregate calls); statements cover SELECT with
joins / GROUP BY / ORDER BY / LIMIT plus simple INSERT/UPDATE/DELETE.
Expression nodes evaluate themselves against a row dict - the same
evaluator runs in the DBEngine executor and inside storage-side push-down
tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..common import QueryError

__all__ = [
    "Expr",
    "ColumnRef",
    "Literal",
    "Param",
    "BinOp",
    "UnaryOp",
    "Between",
    "InList",
    "Like",
    "AggCall",
    "SelectItem",
    "TableRef",
    "JoinClause",
    "Select",
    "Insert",
    "Update",
    "Delete",
    "AGGREGATE_FUNCTIONS",
    "binop_apply",
    "like_match",
]

AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


class Expr:
    """Base expression node."""

    def eval(self, row: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def columns(self) -> List[str]:
        """All column names referenced by this expression."""
        return []

    def contains_aggregate(self) -> bool:
        return False


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    name: str
    table: Optional[str] = None

    @property
    def key(self) -> str:
        return "%s.%s" % (self.table, self.name) if self.table else self.name

    def eval(self, row: Dict[str, Any]) -> Any:
        if self.key in row:
            return row[self.key]
        if self.name in row:
            return row[self.name]
        # Unqualified fallback: unique suffix match over qualified keys.
        matches = [k for k in row if k.endswith("." + self.name)]
        if len(matches) == 1:
            return row[matches[0]]
        raise QueryError("column %r not in row" % self.key)

    def columns(self) -> List[str]:
        return [self.key]


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def eval(self, row: Dict[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Param(Expr):
    """A ``?`` placeholder, bound per execution by a prepared statement."""

    index: int

    def eval(self, row: Dict[str, Any]) -> Any:
        raise QueryError(
            "unbound parameter ?%d (execute via a prepared statement)"
            % (self.index + 1)
        )


_BIN_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_CMP_OPS = frozenset(("=", "!=", "<", "<=", ">", ">="))


def binop_apply(op: str, left: Any, right: Any) -> Any:
    """Null-safe binary operator semantics.

    Comparisons against NULL are False; arithmetic with NULL is NULL.
    This is the single definition shared by :meth:`BinOp.eval` and the
    compiled-predicate paths (:mod:`repro.query.predicate`), so row mode,
    the columnar batch executor, and storage-side push-down tasks cannot
    diverge.
    """
    if left is None or right is None:
        return False if op in _CMP_OPS else None
    return _BIN_OPS[op](left, right)


def like_match(value: Any, pattern: str) -> bool:
    """LIKE with %-wildcards; the single definition shared by
    :meth:`Like.eval` and the compiled-predicate paths."""
    if value is None:
        return False
    if pattern.startswith("%") and pattern.endswith("%"):
        return pattern[1:-1] in value
    if pattern.endswith("%"):
        return value.startswith(pattern[:-1])
    if pattern.startswith("%"):
        return value.endswith(pattern[1:])
    return value == pattern


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _BIN_OPS and self.op not in ("and", "or"):
            raise QueryError("unknown operator %r" % self.op)

    def eval(self, row: Dict[str, Any]) -> Any:
        if self.op == "and":
            return bool(self.left.eval(row)) and bool(self.right.eval(row))
        if self.op == "or":
            return bool(self.left.eval(row)) or bool(self.right.eval(row))
        return binop_apply(self.op, self.left.eval(row), self.right.eval(row))

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def contains_aggregate(self) -> bool:
        return self.left.contains_aggregate() or self.right.contains_aggregate()


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # 'not' | '-'
    operand: Expr

    def eval(self, row: Dict[str, Any]) -> Any:
        value = self.operand.eval(row)
        if self.op == "not":
            return not bool(value)
        if self.op == "-":
            return -value
        raise QueryError("unknown unary op %r" % self.op)

    def columns(self) -> List[str]:
        return self.operand.columns()

    def contains_aggregate(self) -> bool:
        return self.operand.contains_aggregate()


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr

    def eval(self, row: Dict[str, Any]) -> Any:
        value = self.operand.eval(row)
        if value is None:
            return False
        return self.low.eval(row) <= value <= self.high.eval(row)

    def columns(self) -> List[str]:
        return self.operand.columns() + self.low.columns() + self.high.columns()


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    options: Tuple[Any, ...]

    def eval(self, row: Dict[str, Any]) -> Any:
        return self.operand.eval(row) in self.options

    def columns(self) -> List[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class Like(Expr):
    """LIKE with %-wildcards (translated to startswith/endswith/contains)."""

    operand: Expr
    pattern: str

    def eval(self, row: Dict[str, Any]) -> Any:
        return like_match(self.operand.eval(row), self.pattern)

    def columns(self) -> List[str]:
        return self.operand.columns()


@dataclass(frozen=True)
class AggCall(Expr):
    """COUNT/SUM/AVG/MIN/MAX(expr), COUNT(*), optional DISTINCT."""

    func: str
    argument: Optional[Expr]  # None for COUNT(*)
    distinct: bool = False

    def __post_init__(self):
        if self.func not in AGGREGATE_FUNCTIONS:
            raise QueryError("unknown aggregate %r" % self.func)

    def eval(self, row: Dict[str, Any]) -> Any:
        raise QueryError("aggregate evaluated outside Aggregate operator")

    def columns(self) -> List[str]:
        return self.argument.columns() if self.argument is not None else []

    def contains_aggregate(self) -> bool:
        return True


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, AggCall):
            arg = (
                self.expr.argument.columns()[0]
                if self.expr.argument and self.expr.argument.columns()
                else "*"
            )
            return "%s(%s)" % (self.expr.func, arg)
        return "expr"


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    condition: Expr  # equi-join predicate (possibly AND of equalities)


# Statement nodes are frozen so parsed ASTs can be cached and shared
# across sessions without defensive copying (the planner copies the list
# fields it reshapes; nothing may rebind statement fields).


@dataclass(frozen=True)
class Select:
    items: List[SelectItem]
    table: TableRef
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    order_by: List[Tuple[Expr, bool]] = field(default_factory=list)  # (expr, desc)
    limit: Optional[int] = None
    star: bool = False

    @property
    def has_aggregates(self) -> bool:
        return any(item.expr.contains_aggregate() for item in self.items)


@dataclass(frozen=True)
class Insert:
    table: str
    columns: Optional[List[str]]
    rows: List[List[Any]]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Dict[str, Expr]
    where: Optional[Expr]


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expr]
