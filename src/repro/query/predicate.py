"""Compiled expression evaluation shared by every execution path.

Row mode, the columnar batch executor, and storage-side push-down tasks
all evaluate the same ``repro.query.ast`` algebra. Before this module
each path walked the Expr tree per row, and the batch/storage rewrites
risked re-implementing the NULL / LIKE / BETWEEN / IN semantics with
subtle drift. ``compile_expr`` closes that hole: it lowers an Expr to a
chain of closures *once per operator*, and the closures delegate the
actual semantics to :func:`repro.query.ast.binop_apply` and
:func:`repro.query.ast.like_match` — the same helpers ``Expr.eval``
uses — so the three paths cannot diverge.

The compiler is parameterized by an *accessor factory*: a callable that
maps a :class:`ColumnRef` to ``fn(ctx) -> value``. For row mode the
context is the row dict (see :func:`compile_row_predicate`); for the
columnar path the accessor binds the batch's parallel array up front and
the context is just the row index, so per-row evaluation is a couple of
list indexes instead of dict probes (see ``repro.query.columnar``).

Accessors may raise :class:`NotCompilable` for a reference they cannot
bind statically; callers fall back to interpreted ``Expr.eval`` (row
mode) or to the row engine (batch mode), keeping behaviour identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..common import QueryError
from .ast import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    Expr,
    InList,
    Like,
    Literal,
    Param,
    UnaryOp,
    binop_apply,
    like_match,
)

__all__ = [
    "NotCompilable",
    "compile_expr",
    "compile_row_expr",
    "compile_row_predicate",
    "row_accessor",
]


class NotCompilable(Exception):
    """Raised when an expression cannot be lowered for the given accessor
    (unknown node type, or a column the accessor cannot bind)."""


def _raiser(message: str) -> Callable[[Any], Any]:
    def raise_(ctx: Any) -> Any:
        raise QueryError(message)

    return raise_


def compile_expr(
    expr: Expr, accessor: Callable[[ColumnRef], Callable[[Any], Any]]
) -> Callable[[Any], Any]:
    """Lower ``expr`` to a closure ``fn(ctx) -> value``.

    ``accessor(ref)`` supplies the column-lookup closure for each
    :class:`ColumnRef`. Errors that row mode raises lazily (unbound
    parameters, aggregates outside an Aggregate operator) are preserved
    as lazily-raising closures so zero-row inputs behave identically.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda ctx: value
    if isinstance(expr, ColumnRef):
        return accessor(expr)
    if isinstance(expr, BinOp):
        left = compile_expr(expr.left, accessor)
        right = compile_expr(expr.right, accessor)
        op = expr.op
        if op == "and":
            return lambda ctx: bool(left(ctx)) and bool(right(ctx))
        if op == "or":
            return lambda ctx: bool(left(ctx)) or bool(right(ctx))
        return lambda ctx: binop_apply(op, left(ctx), right(ctx))
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, accessor)
        if expr.op == "not":
            return lambda ctx: not bool(operand(ctx))
        if expr.op == "-":
            return lambda ctx: -operand(ctx)
        raise NotCompilable("unknown unary op %r" % expr.op)
    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, accessor)
        low = compile_expr(expr.low, accessor)
        high = compile_expr(expr.high, accessor)

        def between(ctx: Any) -> Any:
            value = operand(ctx)
            if value is None:
                return False
            return low(ctx) <= value <= high(ctx)

        return between
    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, accessor)
        options = expr.options
        return lambda ctx: operand(ctx) in options
    if isinstance(expr, Like):
        operand = compile_expr(expr.operand, accessor)
        pattern = expr.pattern
        return lambda ctx: like_match(operand(ctx), pattern)
    if isinstance(expr, Param):
        return _raiser(
            "unbound parameter ?%d (execute via a prepared statement)"
            % (expr.index + 1)
        )
    if isinstance(expr, AggCall):
        return _raiser("aggregate evaluated outside Aggregate operator")
    raise NotCompilable("cannot compile %s" % type(expr).__name__)


def row_accessor(ref: ColumnRef) -> Callable[[Dict[str, Any]], Any]:
    """Accessor over row dicts, replicating :meth:`ColumnRef.eval`'s
    fallback chain exactly: qualified key, bare name, then a unique
    ``.name`` suffix match over qualified keys."""
    key = ref.key
    name = ref.name
    suffix = "." + name

    def get(row: Dict[str, Any]) -> Any:
        if key in row:
            return row[key]
        if name in row:
            return row[name]
        matches = [k for k in row if k.endswith(suffix)]
        if len(matches) == 1:
            return row[matches[0]]
        raise QueryError("column %r not in row" % key)

    return get


def compile_row_expr(expr: Expr) -> Callable[[Dict[str, Any]], Any]:
    """Compile ``expr`` for row-dict evaluation; falls back to the
    interpreted ``Expr.eval`` if a node cannot be compiled."""
    try:
        return compile_expr(expr, row_accessor)
    except NotCompilable:
        return expr.eval


def compile_row_predicate(expr: Expr) -> Callable[[Dict[str, Any]], bool]:
    """Like :func:`compile_row_expr` but coerced to a boolean filter."""
    fn = compile_row_expr(expr)
    return lambda row: bool(fn(row))
