"""Push-down query (PQ) framework.

Paper Section VI.  A marked scan fragment (filter + projection + optional
partial aggregation) is decomposed into per-server tasks by looking up each
required page in the EBP index:

- pages resident in the engine's own buffer pool are processed locally
  (they may be newer than any cached copy);
- pages found in the EBP index at a sufficient LSN form one task per
  AStore server holding them - executed by the PQ process on that server
  against local PMem, using CPU the one-sided data plane leaves idle;
- all remaining pages form one task per PageStore (primary) server,
  executed against local SSD.

Tasks are dispatched in parallel; each returns filtered column batches,
partial aggregate states (full GROUP-BY partial aggregation, DISTINCT
included), or the prepared build side of a hash join (join-key tuples +
filtered columns), which the engine merges (secondary aggregation / hash
probe).  Pages a server cannot serve (entry cleaned, server crashed) are
returned as failures and re-processed through the engine's normal read
path - push-down never affects correctness.

Fragments execute vectorized on the storage side (column-major decode +
compiled predicates, the same machinery as the engine's batch executor);
fragments whose expressions cannot compile fall back to the row loop,
producing identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..common import US, PageId, QueryError, StorageError
from ..engine.dbengine import DBEngine
from ..engine.ebp import EBP_PAGE_TAG, ExtendedBufferPool
from ..engine.page import Page
from ..engine.table import Table
from ..obs import obs_of
from ..sim.core import AllOf, Environment
from ..sim.network import RpcNetwork
from ..storage.pagestore import PageStoreService, PageStoreServer
from .ast import AggCall, Expr
from .columnar import (
    ColumnBatch,
    compile_batch_expr,
    compile_batch_predicate,
    decode_page_into,
)
from .executor import (
    PAGE_CPU,
    ROW_CPU,
    AggAccumulator,
    new_agg_states,
    update_agg_states,
    vector_group_by,
)
from .plan import SeqScan
from .planner import GROUP_WIRE_BYTES, ROW_WIRE_BYTES
from .predicate import NotCompilable

__all__ = ["PushdownRuntime", "PushdownFragment", "execute_fragment_on_pages"]

#: Serialized plan-fragment size.
FRAGMENT_WIRE_BYTES = 600
#: Wire size of one hash-build join-key tuple riding with its row.
HASH_KEY_WIRE_BYTES = 16


@dataclass
class PushdownFragment:
    """The serialisable unit shipped to storage: scan + filter + projection
    (+ partial aggregation, or hash-build key extraction)."""

    table_name: str
    binding: str
    schema_names: Tuple[str, ...]
    filter: Optional[Expr]
    partial_agg: Optional[Tuple[List[Expr], List[AggCall]]]
    #: Join-key expressions for a pushed hash build (mutually exclusive
    #: with ``partial_agg``): the server returns each surviving row's key
    #: tuple alongside the filtered columns.
    hash_keys: Optional[List[Expr]] = None

    def batch_keys(self) -> Tuple[str, ...]:
        return tuple(
            "%s.%s" % (self.binding, name) for name in self.schema_names
        )


def execute_fragment_on_pages(fragment: PushdownFragment, pages: List[Page]):
    """Run the fragment over page images; pure compute, no timing.

    Returns one of
    ``("batch", ColumnBatch)`` (plain filtered scan),
    ``("hash", (key_tuples, ColumnBatch))`` (pushed hash build),
    ``("partials", [((key, sample), states), ...])`` (partial GROUP BY), or
    ``("rows", [...])`` (row-loop fallback for non-compilable fragments),
    plus the number of rows scanned (for CPU accounting by the caller).

    The vectorized paths produce exactly what the row loops would: same
    row order (page order, slot order), same first-seen group order, same
    float accumulation order.  Whether a fragment compiles depends only
    on its expressions and schema, so every task of one fragment returns
    the same result kind.
    """
    schema = fragment._schema  # type: ignore[attr-defined]
    keys = fragment.batch_keys()
    arrays: List[List[Any]] = [[] for _ in keys]
    scanned = 0
    for page in pages:
        scanned += decode_page_into(schema, page, arrays)
    batch = ColumnBatch(keys, arrays, scanned)
    try:
        if fragment.filter is not None:
            predicate = compile_batch_predicate(fragment.filter, batch)
            batch = batch.gather(
                [i for i in range(batch.n) if predicate(i)]
            )
        if fragment.hash_keys is not None:
            key_fns = [
                compile_batch_expr(expr, batch) for expr in fragment.hash_keys
            ]
            if len(key_fns) == 1:
                fn = key_fns[0]
                key_tuples = [(fn(i),) for i in range(batch.n)]
            else:
                key_tuples = [
                    tuple(fn(i) for fn in key_fns) for i in range(batch.n)
                ]
            return ("hash", (key_tuples, batch)), scanned
        if fragment.partial_agg is None:
            return ("batch", batch), scanned
        group_exprs, aggs = fragment.partial_agg
        groups, sample_index = vector_group_by(batch, group_exprs, aggs)
        partials = [
            ((key, batch.row_dict(sample_index[key])), states)
            for key, states in groups.items()
        ]
        return ("partials", partials), scanned
    except NotCompilable:
        return _execute_fragment_rowwise(fragment, pages)


def _execute_fragment_rowwise(fragment: PushdownFragment, pages: List[Page]):
    """Row-loop fallback, semantically identical to the vector paths."""
    scanned = 0
    if fragment.hash_keys is not None:
        keys = fragment.batch_keys()
        rows: List[Dict[str, Any]] = []
        for page in pages:
            for _slot, raw in page.slots():
                scanned += 1
                row = _bind(fragment, _decode(fragment, raw))
                if fragment.filter is None or fragment.filter.eval(row):
                    rows.append(row)
        key_tuples = [
            tuple(expr.eval(row) for expr in fragment.hash_keys)
            for row in rows
        ]
        arrays = [[row[k] for row in rows] for k in keys]
        batch = ColumnBatch(keys, arrays, len(rows))
        return ("hash", (key_tuples, batch)), scanned
    if fragment.partial_agg is None:
        rows = []
        for page in pages:
            for _slot, raw in page.slots():
                scanned += 1
                values = _decode(fragment, raw)
                row = _bind(fragment, values)
                if fragment.filter is None or fragment.filter.eval(row):
                    rows.append(row)
        return ("rows", rows), scanned
    group_exprs, aggs = fragment.partial_agg
    groups: Dict[Tuple, List[AggAccumulator]] = {}
    samples: Dict[Tuple, Dict[str, Any]] = {}
    for page in pages:
        for _slot, raw in page.slots():
            scanned += 1
            values = _decode(fragment, raw)
            row = _bind(fragment, values)
            if fragment.filter is not None and not fragment.filter.eval(row):
                continue
            key = tuple(expr.eval(row) for expr in group_exprs)
            states = groups.get(key)
            if states is None:
                states = new_agg_states(aggs)
                groups[key] = states
                samples[key] = row
            update_agg_states(states, aggs, row)
    partials = [((key, samples[key]), states) for key, states in groups.items()]
    return ("partials", partials), scanned


# The schema needed by _decode is carried out-of-band: fragments are shipped
# with the schema object attached at dispatch time (a production system
# serialises the schema with the fragment; here it rides along).


def _decode(fragment: PushdownFragment, raw: bytes):
    return fragment._schema.decode(raw)  # type: ignore[attr-defined]


def _bind(fragment: PushdownFragment, values) -> Dict[str, Any]:
    return {
        "%s.%s" % (fragment.binding, name): value
        for name, value in zip(fragment.schema_names, values)
    }


@dataclass
class _Task:
    kind: str  # 'astore' | 'pagestore'
    server_id: str
    #: For astore: [(page_id, entry)]; for pagestore: [(page_id, min_lsn)].
    pages: List[Tuple] = field(default_factory=list)


class PushdownRuntime:
    """Engine-side dispatcher plus the storage-side PQ executor model."""

    #: Cost-model constants (seconds) for the cost-based PQ decision -
    #: the paper's first future-work item.  They mirror the calibrated
    #: storage paths: BP page scan, EBP RDMA read, PageStore RPC read,
    #: per-task dispatch round trip.
    COST_BP_PAGE = 4e-6
    COST_EBP_PAGE = 28e-6
    COST_PAGESTORE_PAGE = 1.0e-3
    COST_TASK_DISPATCH = 0.35e-3
    COST_SERVER_PAGE = 18e-6

    def __init__(
        self,
        env: Environment,
        engine: DBEngine,
        pagestore: PageStoreService,
        ebp: Optional[ExtendedBufferPool] = None,
        network: Optional[RpcNetwork] = None,
        cost_based: bool = False,
    ):
        self.env = env
        self.engine = engine
        self.pagestore = pagestore
        self.ebp = ebp
        #: Decide per fragment whether pushing actually wins (future work
        #: in the paper; opt-in here).  With False, every marked fragment
        #: is pushed - the paper's threshold-only production behaviour.
        self.cost_based = cost_based
        from ..sim.rand import Rng

        self.network = network or RpcNetwork(env, Rng(1299827))
        self.tasks_dispatched = 0
        self.pages_via_ebp = 0
        self.pages_via_pagestore = 0
        self.pages_local = 0
        self.fallback_pages = 0
        self.cost_rejected = 0
        self.hash_build_fragments = 0
        # Counters accumulate in the environment-wide registry so fragment
        # counts survive across sessions and land in the harness report.
        self.obs = obs_of(env)
        registry = self.obs.registry
        for key in (
            "query.pushdown.fragments",
            "query.pushdown.hash_fragments",
            "query.pushdown.tasks_dispatched",
            "query.pushdown.pages_via_ebp",
            "query.pushdown.pages_via_pagestore",
            "query.pushdown.pages_local",
            "query.pushdown.fallback_pages",
            "query.pushdown.cost_rejected",
        ):
            registry.incr(key, 0)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_scan(self, scan: SeqScan, as_batch: bool = False):
        """Generator: execute a marked scan fragment via PQ.

        With ``as_batch`` False (row-mode callers) returns row dicts, or
        partial-aggregate pairs when the fragment carries partial
        aggregation.  With ``as_batch`` True (the vectorized executor)
        returns tagged ``("batch", ColumnBatch)`` / ``("partials", [...])``.
        """
        self.obs.registry.incr("query.pushdown.fragments")
        tracer = self.obs.tracer
        if not tracer.enabled:
            return (yield from self._run_scan(scan, as_batch))
        with tracer.span("pq.scan", tags={"table": scan.table_name}):
            return (yield from self._run_scan(scan, as_batch))

    def run_hash_build(self, scan: SeqScan):
        """Generator: push the build side of a hash join storage-side.

        The fragment filters the scan and extracts join-key tuples on the
        storage servers; the engine only builds the hash table and probes.
        Returns ``(key_tuples, ColumnBatch)``.
        """
        self.obs.registry.incr("query.pushdown.fragments")
        self.obs.registry.incr("query.pushdown.hash_fragments")
        self.hash_build_fragments += 1
        tracer = self.obs.tracer
        if not tracer.enabled:
            return (yield from self._run_scan(scan, True, hash_build=True))
        with tracer.span("pq.hash_build", tags={"table": scan.table_name}):
            return (yield from self._run_scan(scan, True, hash_build=True))

    def _run_scan(self, scan: SeqScan, as_batch: bool = False,
                  hash_build: bool = False):
        table = self.engine.catalog.table(scan.table_name)
        fragment = PushdownFragment(
            table_name=scan.table_name,
            binding=scan.binding,
            schema_names=tuple(table.schema.names),
            filter=scan.filter,
            partial_agg=scan.partial_agg,
            hash_keys=list(scan.hash_keys) if hash_build else None,
        )
        fragment._schema = table.schema  # type: ignore[attr-defined]
        local_pages: List[PageId] = []
        astore_tasks: Dict[str, _Task] = {}
        pagestore_tasks: Dict[str, _Task] = {}
        for page_no in list(table.page_nos):
            page_id = table.page_id(page_no)
            required = self.engine.page_versions.get(page_id, 0)
            if page_id in self.engine.buffer_pool:
                local_pages.append(page_id)
                continue
            entry = self.ebp.index.get(page_id) if self.ebp is not None else None
            if entry is not None and entry.lsn >= required:
                server_id = self._astore_server_of(entry.segment_id)
                if server_id is not None:
                    task = astore_tasks.setdefault(
                        server_id, _Task("astore", server_id)
                    )
                    task.pages.append((page_id, entry))
                    continue
            server = self.pagestore.server_for_page(page_id)
            task = pagestore_tasks.setdefault(
                server.server_id, _Task("pagestore", server.server_id)
            )
            task.pages.append((page_id, required))

        all_tasks = list(astore_tasks.values()) + list(pagestore_tasks.values())
        if self.cost_based and all_tasks and not self._push_wins(
            local_pages, astore_tasks, pagestore_tasks
        ):
            # Cost model says the engine path is cheaper: run the whole
            # fragment locally through the normal read path.
            self.cost_rejected += 1
            self.obs.registry.incr("query.pushdown.cost_rejected")
            everything = [(pid, 0) for pid in local_pages]
            for task in all_tasks:
                for spec in task.pages:
                    page_id = spec[0]
                    everything.append(
                        (page_id, self.engine.page_versions.get(page_id, 0))
                    )
            result, failed = yield from self._run_local(
                fragment, everything, via_engine=True
            )
            if failed:
                raise StorageError("pages unreadable locally: %r" % failed)
            merged = _Merge(fragment)
            merged.add(result)
            self.pages_local += len(everything)
            self.obs.registry.incr(
                "query.pushdown.pages_local", len(everything)
            )
            return merged.finish(as_batch)
        procs = [
            self.env.process(self._dispatch(fragment, task)) for task in all_tasks
        ]
        # Meanwhile the engine thread processes buffer-pool-resident pages.
        local_result, failed = yield from self._run_local(
            fragment, [(pid, 0) for pid in local_pages]
        )
        self.pages_local += len(local_pages)
        self.obs.registry.incr("query.pushdown.pages_local", len(local_pages))
        merged = _Merge(fragment)
        merged.add(local_result)
        if procs:
            results = yield AllOf(self.env, procs)
            for proc in procs:
                task_result, task_failed = proc.value
                merged.add(task_result)
                failed.extend(task_failed)
        # Fallback: any failed page goes through the normal engine path.
        if failed:
            self.fallback_pages += len(failed)
            self.obs.registry.incr("query.pushdown.fallback_pages", len(failed))
            fallback_result, still_failed = yield from self._run_local(
                fragment, failed, via_engine=True
            )
            if still_failed:
                raise StorageError(
                    "pages unreadable even via engine path: %r" % still_failed
                )
            merged.add(fallback_result)
        self.tasks_dispatched += len(all_tasks)
        self.obs.registry.incr(
            "query.pushdown.tasks_dispatched", len(all_tasks)
        )
        return merged.finish(as_batch)

    def _push_wins(self, local_pages, astore_tasks, pagestore_tasks) -> bool:
        """Estimate: is storage-side execution cheaper than the engine path?

        Local cost is serial (the single-threaded executor pages through
        storage one read at a time); pushed cost is the slowest task plus
        one dispatch round trip per task batch (they run in parallel).
        """
        ebp_pages = sum(len(t.pages) for t in astore_tasks.values())
        ps_pages = sum(len(t.pages) for t in pagestore_tasks.values())
        local_cost = (
            len(local_pages) * self.COST_BP_PAGE
            + ebp_pages * self.COST_EBP_PAGE
            + ps_pages * self.COST_PAGESTORE_PAGE
        )
        task_sizes = [
            len(t.pages)
            for t in list(astore_tasks.values()) + list(pagestore_tasks.values())
        ]
        pushed_cost = (
            self.COST_TASK_DISPATCH
            + max(task_sizes) * self.COST_SERVER_PAGE
            + len(local_pages) * self.COST_BP_PAGE
        )
        return pushed_cost < local_cost

    def _astore_server_of(self, segment_id: int) -> Optional[str]:
        meta = self.ebp.client.open_segments.get(segment_id)
        if meta is None:
            return None
        for server_id in meta.route.replicas:
            server = self.ebp.client.servers.get(server_id)
            if server is not None and server.alive:
                return server_id
        return None

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _dispatch(self, fragment: PushdownFragment, task: _Task):
        """Generator: RPC a task to its server and execute it there."""
        tracer = self.obs.tracer
        span = (
            tracer.span(
                "pq.dispatch",
                tags={
                    "server": task.server_id,
                    "kind": task.kind,
                    "pages": len(task.pages),
                },
            )
            if tracer.enabled
            else None
        )
        try:
            request_bytes = FRAGMENT_WIRE_BYTES + 24 * len(task.pages)
            yield from self.network.send(request_bytes)
            if task.kind == "astore":
                result, failed = yield from self._run_on_astore(fragment, task)
            else:
                result, failed = yield from self._run_on_pagestore(fragment, task)
            yield from self.network.send(self._result_bytes(result))
        finally:
            if span is not None:
                span.finish()
        return result, failed

    @staticmethod
    def _result_bytes(result) -> int:
        kind, payload = result
        if kind == "rows":
            return 64 + ROW_WIRE_BYTES * len(payload)
        if kind == "batch":
            return 64 + ROW_WIRE_BYTES * payload.n
        if kind == "hash":
            _keys, batch = payload
            return 64 + (ROW_WIRE_BYTES + HASH_KEY_WIRE_BYTES) * batch.n
        # partials: per-group state plus the shipped DISTINCT value sets.
        distinct_values = sum(
            len(state.distinct)
            for _group, states in payload
            for state in states
            if state.distinct is not None
        )
        return 64 + GROUP_WIRE_BYTES * len(payload) + 8 * distinct_values

    def _run_on_astore(self, fragment: PushdownFragment, task: _Task):
        """Generator: PQ process on an AStore server, reading local PMem."""
        server = self.ebp.client.servers[task.server_id]
        pages: List[Page] = []
        failed: List[Tuple[PageId, int]] = []
        for page_id, entry in task.pages:
            if not server.alive:
                failed.append((page_id, entry.lsn))
                continue
            segment = server.segments.get(entry.segment_id)
            stored = segment.entries.get(entry.offset) if segment else None
            payload = stored.payload if stored else None
            if (
                payload is None
                or not (isinstance(payload, tuple) and payload[0] == EBP_PAGE_TAG)
                or payload[1] != page_id
                or payload[2] != entry.lsn
            ):
                failed.append((page_id, entry.lsn))
                continue
            # Local PMem read: no fabric hop, just media time.
            yield from server.pmem.read(entry.length)
            pages.append(payload[3])
        result, scanned = execute_fragment_on_pages(fragment, pages)
        yield from server.cpu.consume(
            PAGE_CPU * max(len(pages), 1) + ROW_CPU * scanned
        )
        self.pages_via_ebp += len(pages)
        self.obs.registry.incr("query.pushdown.pages_via_ebp", len(pages))
        return result, failed

    def _run_on_pagestore(self, fragment: PushdownFragment, task: _Task):
        """Generator: PQ process on a PageStore server, reading local SSD."""
        server: PageStoreServer = next(
            s for s in self.pagestore.servers if s.server_id == task.server_id
        )
        pages: List[Page] = []
        failed: List[Tuple[PageId, int]] = []
        for page_id, min_lsn in task.pages:
            if not server.alive:
                failed.append((page_id, min_lsn))
                continue
            segment_no = self.pagestore.segment_of(page_id)
            try:
                yield from server.catch_up(segment_no)
                replica = server.replica(segment_no)
                page = replica.pages.get(page_id)
                if page is None or page.page_lsn < min_lsn:
                    failed.append((page_id, min_lsn))
                    continue
                yield from server.device.read(page.size)
                pages.append(page)
            except StorageError:
                failed.append((page_id, min_lsn))
        result, scanned = execute_fragment_on_pages(fragment, pages)
        yield from server.cpu.consume(
            PAGE_CPU * max(len(pages), 1) + ROW_CPU * scanned
        )
        self.pages_via_pagestore += len(pages)
        self.obs.registry.incr(
            "query.pushdown.pages_via_pagestore", len(pages)
        )
        return result, failed

    def _run_local(self, fragment: PushdownFragment, page_specs, via_engine=False):
        """Generator: process pages on the engine thread.

        ``page_specs`` is [(page_id, min_lsn)].  With ``via_engine`` the
        pages go through the full fetch path (fallback); otherwise only
        buffer-pool residents are read.
        """
        pages: List[Page] = []
        failed: List[Tuple[PageId, int]] = []
        for page_id, min_lsn in page_specs:
            if via_engine:
                try:
                    page = yield from self.engine.fetch_page(page_id)
                except StorageError:
                    failed.append((page_id, min_lsn))
                    continue
            else:
                page = self.engine.buffer_pool.get(page_id)
                if page is None:
                    failed.append((page_id, min_lsn))
                    continue
            pages.append(page)
        result, scanned = execute_fragment_on_pages(fragment, pages)
        yield from self.engine.cpu.consume(
            PAGE_CPU * max(len(pages), 1) + ROW_CPU * scanned
        )
        return result, failed


class _Merge:
    """Accumulates task results into the fragment's output shape.

    Merge order is deterministic: local pages first, then dispatched
    tasks in dispatch order, then fallback pages — identical whichever
    result kind the fragment produces, so row-mode and batch-mode callers
    see the same rows in the same order.
    """

    def __init__(self, fragment: PushdownFragment):
        self.fragment = fragment
        self.rows: List[Dict[str, Any]] = []
        self.partials: List = []
        self.batch: Optional[ColumnBatch] = None
        self.hash_keys: List[Tuple] = []

    def add(self, result) -> None:
        kind, payload = result
        if kind == "rows":
            self.rows.extend(payload)
        elif kind == "partials":
            self.partials.extend(payload)
        elif kind == "batch":
            self._add_batch(payload)
        else:  # hash
            key_tuples, batch = payload
            self.hash_keys.extend(key_tuples)
            self._add_batch(batch)

    def _add_batch(self, batch: ColumnBatch) -> None:
        if self.batch is None:
            self.batch = batch
        else:
            self.batch.extend(batch)

    def finish(self, as_batch: bool = False):
        fragment = self.fragment
        if fragment.hash_keys is not None:
            batch = self.batch
            if batch is None:
                batch = ColumnBatch.empty(fragment.batch_keys())
            return self.hash_keys, batch
        if fragment.partial_agg is not None:
            return ("partials", self.partials) if as_batch else self.partials
        if as_batch:
            batch = self.batch
            if batch is None:
                # Row-loop fallback produced dict rows; columnarize them.
                keys = fragment.batch_keys()
                batch = ColumnBatch(
                    keys,
                    [[row[k] for row in self.rows] for k in keys],
                    len(self.rows),
                )
            return ("batch", batch)
        if self.batch is not None:
            return self.batch.to_rows()
        return self.rows
