"""Table II: log-writing micro-benchmark, with and without PMem.

Paper numbers (single-threaded 4 KB appends):

=========  =================  =========  ====================
           avg write latency  avg I/OPS  avg bandwidth (MB/s)
=========  =================  =========  ====================
W/O PMem   0.638 ms           1,527      5.97
W/ PMem    0.086 ms           11,465     44.79   (~7.4x better)
=========  =================  =========  ====================
"""

from conftest import print_table

from repro.harness.experiments import table2_log_micro


def test_table2_log_micro(benchmark):
    def run():
        return table2_log_micro(writes=1500)

    without_pmem, with_pmem = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = without_pmem.avg_latency_ms / with_pmem.avg_latency_ms
    print_table(
        "Table II - log writing micro-benchmark (paper: 0.638 / 0.086 ms, 7.4x)",
        ["config", "avg lat (ms)", "IOPS", "MB/s", "p99 (ms)"],
        [
            (
                r.label,
                "%.3f" % r.avg_latency_ms,
                "%.0f" % r.iops,
                "%.2f" % r.bandwidth_mb_s,
                "%.3f" % r.p99_latency_ms,
            )
            for r in (without_pmem, with_pmem)
        ]
        + [("speedup", "%.1fx" % speedup, "", "", "")],
    )
    benchmark.extra_info["ssd_avg_ms"] = round(without_pmem.avg_latency_ms, 3)
    benchmark.extra_info["pmem_avg_ms"] = round(with_pmem.avg_latency_ms, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # Shape assertions: same order of magnitude and direction as the paper.
    assert 0.3 < without_pmem.avg_latency_ms < 1.2  # paper: 0.638
    assert 0.04 < with_pmem.avg_latency_ms < 0.2  # paper: 0.086
    assert 4.0 < speedup < 15.0  # paper: ~7.4x
    assert with_pmem.iops > 5 * without_pmem.iops
