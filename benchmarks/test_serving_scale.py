"""Serving-layer scale-out: read QPS vs replica count, policy shoot-out.

The paper's future-work standby instances exist to scale reads off the
primary.  This benchmark shows the serving layer delivering that:

- closed-loop read QPS grows with the replica fleet size (replicas are
  CPU-bound at 2 cores, so added replicas are added capacity);
- the lag-aware ``least-lag`` policy beats lag-blind ``round-robin`` on
  read P95 when one replica applies REDO slowly, because sessions
  carrying fresh commit tokens do not park on the laggard;
- admission control sheds (bounded queue, nonzero rejects) instead of
  queueing unboundedly when the read class is oversubscribed.

Emits ``benchmarks/BENCH_serving.json`` with the headline numbers.
"""

import pytest
from conftest import emit_bench_json, print_table

from repro.common import MS
from repro.frontend.serve import run_serving

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    yield
    if RESULTS:
        emit_bench_json("serving", RESULTS)


def test_read_qps_scales_with_replicas(benchmark):
    def sweep():
        points = {}
        for replicas in (1, 2, 4):
            report = run_serving(
                seed=11, replicas=replicas, policy="round-robin",
                duration=0.15, write_terminals=0, mixed_sessions=0,
                read_sessions=10, chaos=False, replica_cores=2,
            )
            points[replicas] = report
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    qps = {n: p["reads"]["read_qps"] for n, p in points.items()}
    print_table(
        "Serving scale-out - closed-loop read QPS vs replicas "
        "(10 sessions, 2-core replicas)",
        ["replicas", "read QPS", "read P95 (ms)", "primary reads"],
        [
            (n, "%.0f" % qps[n],
             "%.4f" % points[n]["reads"]["read_p95_ms"],
             points[n]["reads"]["primary"])
            for n in sorted(points)
        ],
    )
    RESULTS["scale"] = {
        "read_qps": qps,
        "read_p95_ms": {
            n: points[n]["reads"]["read_p95_ms"] for n in points
        },
    }
    benchmark.extra_info.update(
        {"qps_x1": round(qps[1]), "qps_x4": round(qps[4])}
    )
    # Every replica count stays correct...
    assert all(p["ok"] for p in points.values())
    # ...reads actually spread over the fleet...
    assert all(v > 0 for v in points[4]["reads"]["per_replica"].values())
    # ...and capacity scales: 4 replicas clearly beat 1 (and 2 sits
    # between, monotone fleet scaling).
    assert qps[4] > qps[2] > qps[1]
    assert qps[4] > 1.5 * qps[1]


def test_least_lag_beats_round_robin_on_read_p95(benchmark):
    # One fresh replica (1 ms apply polls) and one laggard (12 ms):
    # every read carries a just-committed token, so a lag-blind router
    # keeps parking reads on the laggard's apply cadence.
    def shootout():
        reports = {}
        for policy in ("round-robin", "least-lag"):
            reports[policy] = run_serving(
                seed=13, replicas=2, policy=policy, duration=0.15,
                write_terminals=1, mixed_sessions=4, read_sessions=0,
                chaos=False, apply_intervals=(1 * MS, 12 * MS),
            )
        return reports

    reports = benchmark.pedantic(shootout, rounds=1, iterations=1)
    rr, ll = reports["round-robin"], reports["least-lag"]
    print_table(
        "Routing policy shoot-out - uneven fleet (1 ms vs 12 ms apply)",
        ["policy", "read P95 (ms)", "LSN waits", "wait P95 (ms)",
         "lag bounces"],
        [
            (name,
             "%.4f" % r["reads"]["read_p95_ms"],
             r["consistency"]["lsn_waits"],
             "%.4f" % r["consistency"]["lsn_wait_p95_ms"],
             r["reads"]["bounces"]["lag_timeout"])
            for name, r in (("round-robin", rr), ("least-lag", ll))
        ],
    )
    RESULTS["policies"] = {
        name: {
            "read_p95_ms": r["reads"]["read_p95_ms"],
            "lsn_waits": r["consistency"]["lsn_waits"],
            "lsn_wait_p95_ms": r["consistency"]["lsn_wait_p95_ms"],
        }
        for name, r in reports.items()
    }
    benchmark.extra_info.update({
        "round_robin_p95_ms": rr["reads"]["read_p95_ms"],
        "least_lag_p95_ms": ll["reads"]["read_p95_ms"],
    })
    assert rr["ok"] and ll["ok"]
    # The acceptance bar: lag-aware routing wins the read tail.
    assert ll["reads"]["read_p95_ms"] < rr["reads"]["read_p95_ms"]
    # And it wins by waiting on the fresh replica's cadence instead of
    # the laggard's (not by bouncing everything to the primary).
    assert ll["consistency"]["lsn_wait_p95_ms"] < \
        rr["consistency"]["lsn_wait_p95_ms"]


def test_admission_control_sheds_under_overload(benchmark):
    report = benchmark.pedantic(
        lambda: run_serving(
            seed=17, duration=0.15, write_terminals=1, mixed_sessions=1,
            read_sessions=6, chaos=False, replica_cores=1,
            read_limit=1, queue_limit=2, queue_timeout=2 * MS,
        ),
        rounds=1, iterations=1,
    )
    admission = report["admission"]
    print_table(
        "Admission control under read overload (limit=1, queue=2)",
        ["admitted reads", "shed reads", "queue-full", "deadline",
         "wait P95 (ms)"],
        [(admission["admitted"]["read"], admission["shed"]["read"],
          admission["queue_full"], admission["deadline"],
          "%.4f" % admission["wait_p95_ms"])],
    )
    RESULTS["overload"] = {
        "admitted_reads": admission["admitted"]["read"],
        "rejects": admission["rejects"],
        "queue_full": admission["queue_full"],
        "deadline": admission["deadline"],
    }
    benchmark.extra_info["rejects"] = admission["rejects"]
    assert admission["rejects"] > 0
    assert report["ok"]  # shedding never breaks session consistency
