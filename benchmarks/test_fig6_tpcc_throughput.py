"""Figure 6: TPC-C throughput vs concurrent clients.

Paper: stock veDB peaks at ~68k TPS (128 clients); veDB+AStore peaks at
~90k TPS (64 clients) - a >30% improvement, with AStore peaking *earlier*
(PMem contention makes the workload CPU-bound sooner).

Absolute numbers here are scaled (simulated cluster, scaled warehouses);
the assertions check the paper's shape: AStore wins at every client count,
and the stock deployment needs more concurrency to approach its peak.
"""

from conftest import print_table


def test_fig6_tpcc_throughput(benchmark, tpcc_sweep_results):
    points = benchmark.pedantic(
        lambda: tpcc_sweep_results, rounds=1, iterations=1
    )
    by = {(p.deployment, p.clients): p for p in points}
    clients = sorted({p.clients for p in points})
    print_table(
        "Figure 6 - TPC-C throughput vs clients (paper: +30% peak with AStore)",
        ["clients", "stock TPS", "astore TPS", "improvement"],
        [
            (
                c,
                "%.0f" % by[("stock", c)].tps,
                "%.0f" % by[("astore", c)].tps,
                "%.0f%%"
                % (
                    (by[("astore", c)].tps / max(by[("stock", c)].tps, 1) - 1)
                    * 100
                ),
            )
            for c in clients
        ],
    )
    stock_peak = max(p.tps for p in points if p.deployment == "stock")
    astore_peak = max(p.tps for p in points if p.deployment == "astore")
    benchmark.extra_info["stock_peak_tps"] = round(stock_peak)
    benchmark.extra_info["astore_peak_tps"] = round(astore_peak)
    benchmark.extra_info["peak_improvement_pct"] = round(
        (astore_peak / stock_peak - 1) * 100
    )
    # Shape: AStore beats stock at every concurrency level...
    for c in clients:
        assert by[("astore", c)].tps > by[("stock", c)].tps
    # ...and the peak gain is a meaningful fraction (paper: ~30%).
    assert astore_peak > 1.2 * stock_peak
    # Stock keeps gaining from extra concurrency longer than AStore does:
    # its relative gain from the lowest to the highest client count exceeds
    # AStore's (AStore saturates earlier).
    low, high = clients[0], clients[-1]
    stock_gain = by[("stock", high)].tps / by[("stock", low)].tps
    astore_gain = by[("astore", high)].tps / by[("astore", low)].tps
    assert stock_gain > astore_gain
