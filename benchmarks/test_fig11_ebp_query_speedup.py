"""Figure 11: EBP acceleration of individual CH queries at two BP sizes.

Paper (16 GB and 32 GB buffer pools, 256 GB EBP): query 7 - whose working
set exceeds 32 GB - improves >3x in both settings; query 16 - a simple
two-table join whose working set fits even the 16 GB pool - barely moves;
the rest fall in between, up to 3.5x.
"""

from conftest import print_table

from repro.harness.experiments import fig11_ebp_query_speedup

QUERIES = (1, 6, 7, 12, 15, 16, 18, 22)


def test_fig11_ebp_query_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_ebp_query_speedup(query_nos=QUERIES, runs=1),
        rounds=1,
        iterations=1,
    )
    by = {(r.query_no, r.bp_label): r for r in rows}
    labels = sorted({r.bp_label for r in rows})
    print_table(
        "Figure 11 - EBP speedup per CH query (paper: q7 >3x, q16 ~1x)",
        ["query"] + ["speedup @%s" % label for label in labels],
        [
            tuple(
                ["Q%d" % q]
                + ["%.2fx" % by[(q, label)].speedup for label in labels]
            )
            for q in QUERIES
        ],
    )
    for label in labels:
        q7 = by[(7, label)].speedup
        q16 = by[(16, label)].speedup
        benchmark.extra_info["q7_speedup_%s" % label] = round(q7, 2)
        benchmark.extra_info["q16_speedup_%s" % label] = round(q16, 2)
        # Shape: the big-working-set query gains a lot; the small one, little.
        assert q7 > 2.0  # paper: >3x
        assert q16 < 1.6  # paper: ~1x
        assert q7 > q16
    # EBP never makes a query dramatically slower.
    assert all(r.speedup > 0.7 for r in rows)
