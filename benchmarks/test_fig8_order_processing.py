"""Figure 8: the internal order-processing workload.

Paper: for the single 2 KB-insert transaction, veDB+AStore reaches the
10,000+ TPS target with just 8 clients (vs 3,339 TPS for stock - a >3x
gap); for the full order-processing transaction AStore reaches the target
with 64 clients while stock needs more than 512.
"""

from conftest import print_table

from repro.harness.experiments import fig8_order_processing


def test_fig8_order_processing(benchmark):
    points = benchmark.pedantic(
        lambda: fig8_order_processing(clients_list=(8, 32, 64), duration=0.3),
        rounds=1,
        iterations=1,
    )
    by = {(p.deployment, p.kind, p.clients): p for p in points}
    rows = []
    for kind in ("single_insert", "order_processing"):
        for clients in (8, 32, 64):
            stock = by[("stock", kind, clients)]
            astore = by[("astore", kind, clients)]
            rows.append(
                (
                    kind,
                    clients,
                    "%.0f" % stock.tps,
                    "%.0f" % astore.tps,
                    "%.1fx" % (astore.tps / max(stock.tps, 1)),
                )
            )
    print_table(
        "Figure 8 - order processing (paper: >3x on single insert @8 clients)",
        ["transaction", "clients", "stock TPS", "astore TPS", "ratio"],
        rows,
    )
    single8_stock = by[("stock", "single_insert", 8)].tps
    single8_astore = by[("astore", "single_insert", 8)].tps
    benchmark.extra_info["single_insert_8c_ratio"] = round(
        single8_astore / single8_stock, 2
    )
    # Shape assertions per the paper's three claims:
    # (1) >3x on the single-insert transaction at 8 clients;
    assert single8_astore > 2.5 * single8_stock
    # (2) AStore wins at every point measured;
    for kind in ("single_insert", "order_processing"):
        for clients in (8, 32, 64):
            assert (
                by[("astore", kind, clients)].tps
                > by[("stock", kind, clients)].tps
            )
    # (3) for the full transaction, AStore reaches a throughput at 64
    # clients that stock cannot reach anywhere in this sweep.
    astore_full_64 = by[("astore", "order_processing", 64)].tps
    stock_full_best = max(
        by[("stock", "order_processing", c)].tps for c in (8, 32, 64)
    )
    assert astore_full_64 > stock_full_best
