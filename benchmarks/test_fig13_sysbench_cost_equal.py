"""Table III / Figure 13: cost-equal sysbench comparison.

Paper: PMem costs about a third of DRAM per GB, so each deployment pair
shrinks the veDB+AStore buffer pool by X GB and grants a 3X GB EBP (Table
III).  The QPS improvement is substantial below 64 clients and diminishes
toward 256 clients, where EBP index maintenance (a lock-guarded structure
on the client side) eats the gains.
"""

from conftest import print_table

from repro.harness.experiments import fig13_sysbench_cost_equal


def test_fig13_sysbench_cost_equal(benchmark):
    points = benchmark.pedantic(
        lambda: fig13_sysbench_cost_equal(
            clients_list=(4, 16, 64, 128), duration=0.25
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 13 - cost-equal sysbench QPS improvement "
        "(paper: big gains <64 clients, vanishing at 256)",
        ["cores", "clients", "stock QPS", "astore+EBP QPS", "improvement"],
        [
            (
                p.cores,
                p.clients,
                "%.0f" % p.stock_qps,
                "%.0f" % p.astore_qps,
                "%.0f%%" % p.improvement_pct,
            )
            for p in points
        ],
    )
    by_clients = {p.clients: p for p in points}
    low = by_clients[4].improvement_pct
    mid = by_clients[16].improvement_pct
    high = by_clients[128].improvement_pct
    benchmark.extra_info["improvement_low_pct"] = round(low)
    benchmark.extra_info["improvement_high_pct"] = round(high)
    # Shape 1: significant improvement at low concurrency.
    assert low > 20.0 or mid > 20.0
    # Shape 2: the improvement shrinks as concurrency rises (EBP index
    # contention + CPU saturation).
    assert high < max(low, mid)
    # Shape 3: at the top of the sweep the gain has (nearly) vanished but
    # the cost-equal swap is not a large regression either.
    assert -35.0 < high < max(low, mid) / 2
