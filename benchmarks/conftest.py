"""Shared helpers for the benchmark harness.

Every file under benchmarks/ regenerates one table or figure of the paper:
it runs the corresponding experiment from :mod:`repro.harness.experiments`
(at a laptop-scale configuration), prints the same rows/series the paper
reports, and records headline numbers in ``benchmark.extra_info``.

Run:  pytest benchmarks/ --benchmark-only
"""

import json
import os
import sys

import pytest


def emit_bench_json(name, payload):
    """Write ``benchmarks/BENCH_<name>.json`` (stable key order).

    Machine-readable companion to the printed tables: CI and scripts can
    diff or trend the headline numbers without scraping stdout.
    """
    path = os.path.join(os.path.dirname(__file__), "BENCH_%s.json" % name)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def print_table(title, headers, rows):
    """Render one paper-style table to stdout (visible with -s or on the
    benchmark summary)."""
    out = ["", "=" * 72, title, "=" * 72]
    fmt = "  ".join("%%-%ds" % max(len(h), 12) for h in headers)
    out.append(fmt % tuple(headers))
    for row in rows:
        out.append(fmt % tuple(str(c) for c in row))
    text = "\n".join(out)
    print(text, file=sys.stderr)
    return text


@pytest.fixture
def make_deployment():
    """Factory for started deployments via the DeploymentSpec builder API.

    Benchmarks that need a one-off deployment (rather than a canned
    experiment runner) build it here so construction goes through the
    validated spec:  ``make_deployment(DeploymentSpec().with_astore())``.
    """
    from repro.harness.deployment import DeploymentSpec

    def _make(spec=None):
        dep = (spec or DeploymentSpec.astore_pq()).build()
        dep.start()
        return dep

    return _make


@pytest.fixture(scope="session")
def tpcc_sweep_results():
    """Fig 6 and Fig 7 share one TPC-C client sweep (run once per session)."""
    from repro.harness.experiments import fig6_fig7_tpcc_sweep

    return fig6_fig7_tpcc_sweep()


@pytest.fixture(scope="session")
def fig14_results():
    """Fig 14's three-configuration CH run, shared across assertions."""
    from repro.harness.experiments import fig14_pushdown_speedup

    return fig14_pushdown_speedup(runs=1)
