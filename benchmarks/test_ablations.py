"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper - these isolate individual mechanisms the paper
asserts qualitatively:

1. SegmentRing vs BlobGroup: large log writes unsplit over RDMA beat
   8 KB-striped SSD writes, and the gap grows with I/O size (Section V-A).
2. Chained RDMA verbs vs separate doorbells (Section IV-B).
3. Group commit batching: batched flushes sustain more commits/s than
   flush-per-commit (Section V-B's run-to-completion model).
4. EBP priority vs flat policy under a repeated-scan (PQ-style) workload:
   priority keeps the hot table's pages cached (Section VI-B).
"""

from conftest import print_table

from repro.common import KB, MB, US
from repro.sim.core import AllOf, Environment
from repro.sim.metrics import LatencyRecorder
from repro.sim.network import RdmaFabric, RdmaVerb
from repro.sim.rand import SeedSequence


def test_ablation_segmentring_vs_blobgroup(benchmark):
    """Write latency by I/O size: BlobGroup (striped SSD) vs SegmentRing."""
    from repro.astore.cluster import AStoreCluster
    from repro.astore.segment_ring import SegmentRing
    from repro.storage.logstore import LogStore

    sizes = (4 * KB, 64 * KB, 256 * KB)

    def run():
        results = {}
        for label in ("blobgroup", "segmentring"):
            env = Environment()
            seeds = SeedSequence(3)
            recorders = {size: LatencyRecorder() for size in sizes}
            if label == "blobgroup":
                store = LogStore(env, seeds)

                def writer(env):
                    for size in sizes:
                        for _ in range(150):
                            latency = yield from store.append(size)
                            recorders[size].record(latency)

            else:
                from repro.common import GB

                cluster = AStoreCluster(env, seeds, num_servers=3,
                                        pmem_capacity=1 * GB,
                                        segment_slot_size=64 * MB)
                client = cluster.new_client("bench")
                ring = SegmentRing(client, ring_size=6, segment_size=64 * MB)

                def writer(env):
                    yield from ring.initialize()
                    lsn = 0
                    for size in sizes:
                        for _ in range(150):
                            lsn += size
                            start = env.now
                            yield from ring.append(lsn, size, b"")
                            recorders[size].record(env.now - start)

            proc = env.process(writer(env))
            env.run_until_event(proc)
            results[label] = {s: recorders[s].mean for s in sizes}
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation - SegmentRing vs BlobGroup write latency by I/O size",
        ["I/O size", "BlobGroup (ms)", "SegmentRing (ms)", "ratio"],
        [
            (
                "%d KB" % (size // KB),
                "%.3f" % (results["blobgroup"][size] * 1000),
                "%.3f" % (results["segmentring"][size] * 1000),
                "%.1fx"
                % (results["blobgroup"][size] / results["segmentring"][size]),
            )
            for size in sizes
        ],
    )
    for size in sizes:
        assert results["segmentring"][size] < results["blobgroup"][size]
    # Paper's 256 KB claim: ~0.1 ms over one-sided RDMA (wire time).  Our
    # end-to-end path adds SDK bookkeeping and PMem media bandwidth on
    # top, so allow up to ~4x the wire-only figure - still several times
    # faster than the striped SSD path at the same size.
    assert results["segmentring"][256 * KB] < 0.45e-3


def test_ablation_rdma_chaining(benchmark):
    """Chained persistent-write verbs vs three separate doorbells."""

    def run():
        env = Environment()
        seeds = SeedSequence(5)
        fabric = RdmaFabric(env, seeds.stream("rdma"), jitter_sigma=0.0)
        chained = LatencyRecorder()
        separate = LatencyRecorder()

        def worker(env):
            for _ in range(500):
                start = env.now
                yield from fabric.persistent_write(512)
                chained.record(env.now - start)
            for _ in range(500):
                start = env.now
                for verb in (
                    RdmaVerb("write", 512),
                    RdmaVerb("write", 8),
                    RdmaVerb("read", 8),
                ):
                    yield from fabric.post(verb)
                separate.record(env.now - start)

        proc = env.process(worker(env))
        env.run_until_event(proc)
        return chained.mean, separate.mean

    chained_mean, separate_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation - chained verbs vs separate doorbells (persistent write)",
        ["variant", "mean latency (us)"],
        [
            ("chained (1 doorbell)", "%.2f" % (chained_mean * 1e6)),
            ("separate (3 doorbells)", "%.2f" % (separate_mean * 1e6)),
        ],
    )
    assert chained_mean < separate_mean


def test_ablation_group_commit(benchmark):
    """Commits/s with group commit vs flush-per-commit."""
    from repro.engine.page import PageOp
    from repro.engine.wal import LogBuffer, RedoRecord
    from repro.common import PageId

    def run():
        results = {}
        for label, batch_bytes in (("grouped", 512 * KB), ("per-commit", 1)):
            env = Environment()
            flush_latency = 0.0006  # the SSD log path

            def flush(records, nbytes):
                yield env.timeout(flush_latency)

            log = LogBuffer(env, flush, max_batch_bytes=batch_bytes)
            log.start()
            done_count = [0]

            def committer(env, index):
                for i in range(40):
                    record = RedoRecord(
                        lsn=index * 100000 + i + 1,
                        txn_id=index,
                        page_id=PageId(1, 1),
                        op=PageOp("insert", slot=0, row=b"x" * 64),
                    )
                    event = log.submit([record], wait=True)
                    yield event
                    done_count[0] += 1

            procs = [env.process(committer(env, i)) for i in range(32)]
            env.run_until_event(AllOf(env, procs))
            results[label] = done_count[0] / env.now
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation - group commit batching (32 concurrent committers)",
        ["variant", "commits/s"],
        [(label, "%.0f" % rate) for label, rate in results.items()],
    )
    assert results["grouped"] > 2.0 * results["per-commit"]


def test_ablation_ebp_priority_policy(benchmark):
    """Priority vs flat EBP policy: hot-table hit ratio under churn."""
    from repro.astore.cluster import AStoreCluster
    from repro.common import PageId
    from repro.engine.ebp import ExtendedBufferPool
    from repro.engine.page import Page, PageOp, apply_op

    def run():
        results = {}
        page_size = 4 * KB
        for policy in ("flat", "priority"):
            env = Environment()
            seeds = SeedSequence(9)
            cluster = AStoreCluster(env, seeds, num_servers=3,
                                    segment_slot_size=1 * MB)
            client = cluster.new_client("ebp")
            ebp = ExtendedBufferPool(
                env,
                client,
                capacity_bytes=2 * MB,
                segment_size=1 * MB,
                page_size=page_size,
                policy=policy,
                space_priorities={1: 5, 2: 0},  # space 1 = the hot PQ table
            )

            def page_of(space, number):
                page = Page(PageId(space, number), size=page_size)
                apply_op(page, PageOp("insert", slot=0, row=b"d" * 64), 1)
                return page

            def worker(env):
                # Cache the hot table once, then churn cold pages through.
                for number in range(100):
                    yield from ebp.cache_page(page_of(1, number))
                for number in range(1500):
                    yield from ebp.cache_page(page_of(2, number))
                hot_hits = 0
                for number in range(100):
                    got = yield from ebp.get_page(PageId(1, number))
                    if got is not None:
                        hot_hits += 1
                return hot_hits

            proc = env.process(worker(env))
            env.run_until_event(proc)
            results[policy] = proc.value
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation - EBP policy: hot-table pages retained after churn "
        "(100 cached, then 1500 cold evictions)",
        ["policy", "hot pages still cached"],
        [(policy, count) for policy, count in results.items()],
    )
    # Priority keeps (almost) the whole hot table; flat loses much of it.
    assert results["priority"] > results["flat"]
    assert results["priority"] >= 80
