"""Figure 10: impact of AP streams on TP throughput, with and without EBP.

Paper (TPC-CH, 1000 warehouses, 32 TP clients): one AP stream costs ~5% TP
throughput, eight streams cost ~30% - buffer-pool contention - and turning
the EBP on gives a consistent TP improvement at every AP level.
"""

from conftest import print_table

from repro.harness.experiments import fig10_ap_impact


def test_fig10_ap_impact(benchmark):
    points = benchmark.pedantic(
        lambda: fig10_ap_impact(ap_streams_list=(0, 1, 8), tp_clients=16,
                                duration=0.3),
        rounds=1,
        iterations=1,
    )
    by = {(p.ebp, p.ap_streams): p for p in points}
    print_table(
        "Figure 10 - AP impact on TP throughput (paper: -5%/-30%; EBP helps)",
        ["AP streams", "TP TPS (no EBP)", "TP TPS (EBP)", "EBP gain"],
        [
            (
                streams,
                "%.0f" % by[(False, streams)].tp_tps,
                "%.0f" % by[(True, streams)].tp_tps,
                "%.0f%%"
                % (
                    (by[(True, streams)].tp_tps / max(by[(False, streams)].tp_tps, 1)
                     - 1)
                    * 100
                ),
            )
            for streams in (0, 1, 8)
        ],
    )
    # Shape 1: without EBP, AP streams depress TP throughput monotonically.
    no_ebp = [by[(False, s)].tp_tps for s in (0, 1, 8)]
    assert no_ebp[1] < no_ebp[0]
    assert no_ebp[2] < no_ebp[1]
    drop8 = 1 - no_ebp[2] / no_ebp[0]
    benchmark.extra_info["tp_drop_8streams_pct"] = round(drop8 * 100)
    assert drop8 > 0.10  # paper: ~30%
    # Shape 2: EBP improves TP throughput whenever AP streams compete.
    for streams in (1, 8):
        assert by[(True, streams)].tp_tps > by[(False, streams)].tp_tps
    gain8 = by[(True, 8)].tp_tps / by[(False, 8)].tp_tps - 1
    benchmark.extra_info["ebp_gain_8streams_pct"] = round(gain8 * 100)
