"""Sharded multi-primary scale-out: TPC-C write throughput vs shards.

The paper's single-writer architecture caps write throughput at one
primary's CPU.  Hash-sharding the keyspace across N primaries - each
with its own REDO log, PageStore, and engine - multiplies that
capacity.  This benchmark shows:

- near-linear TPC-C write throughput at 1 / 2 / 4 shards (terminals pin
  to home warehouses; every transaction is single-shard, so no 2PC tax
  dilutes the scaling signal);
- a single-shard deployment never pays for 2PC (zero two-phase commits);
- cross-shard NewOrders (remote supply warehouses) run as two-phase
  commits at a bounded throughput cost and zero in-doubt leftovers.

Emits ``benchmarks/BENCH_sharding.json`` with the headline numbers.
"""

import pytest
from conftest import emit_bench_json, print_table

from repro.harness.deployment import DeploymentSpec
from repro.workloads import TpccConfig, run_tpcc_sharded

RESULTS = {}

TERMINALS = 16
DURATION = 0.6
WARMUP = 0.1


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    yield
    if RESULTS:
        emit_bench_json("sharding", RESULTS)


def tpcc_config(remote_item_prob=0.0):
    # 4 warehouses on every shard count: the data and offered load stay
    # fixed while the primary count varies (strong scaling).
    return TpccConfig(
        warehouses=4, districts_per_warehouse=4, customers_per_district=10,
        items=50, remote_item_prob=remote_item_prob,
    )


def run_point(shards, remote_item_prob=0.0, seed=19):
    # 1-core primaries: the write path is CPU-bound, so per-shard engine
    # capacity - the resource sharding multiplies - sets the throughput
    # ceiling (the stock 20-core engine never saturates at this scale).
    dep = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=4)
        .with_engine(cores=1)
        .with_shards(shards)
        .build()
    )
    dep.start()
    after_load = {}
    tps, latency, terminals = run_tpcc_sharded(
        dep, tpcc_config(remote_item_prob), clients=TERMINALS,
        duration=DURATION, warmup=WARMUP, after_load=after_load,
    )
    counters = dep.coordinator.counters()
    # The load broadcast-inserts the replicated item table (a legitimate
    # cross-shard write); workload-attributable 2PC is the delta.
    workload_2pc = (
        counters["two_phase_commits"] - after_load["two_phase_commits"]
    )
    return {
        "tps": tps,
        "p95_ms": latency.percentile(95.0) * 1e3,
        "committed": sum(t.committed for t in terminals),
        "aborted": sum(t.aborted for t in terminals),
        "in_doubt": sum(t.in_doubt for t in terminals),
        "coordinator": counters,
        "workload_2pc": workload_2pc,
    }


def test_tpcc_write_throughput_scales_with_shards(benchmark):
    def sweep():
        return {shards: run_point(shards) for shards in (1, 2, 4)}

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tps = {n: p["tps"] for n, p in points.items()}
    print_table(
        "Sharded TPC-C scale-out - write throughput vs primaries "
        "(%d terminals, 4 warehouses)" % TERMINALS,
        ["shards", "tps", "txn P95 (ms)", "committed", "2PC commits"],
        [
            (n, "%.0f" % tps[n], "%.3f" % points[n]["p95_ms"],
             points[n]["committed"], points[n]["workload_2pc"])
            for n in sorted(points)
        ],
    )
    RESULTS["scale"] = {
        "tps": tps,
        "p95_ms": {n: points[n]["p95_ms"] for n in points},
        "speedup_x4": tps[4] / tps[1],
    }
    benchmark.extra_info.update(
        {"tps_x1": round(tps[1]), "tps_x4": round(tps[4])}
    )
    # Single-shard statements never pay for 2PC - at ANY shard count
    # here, since terminals stay within their home warehouse's shard.
    assert all(p["workload_2pc"] == 0 for p in points.values())
    # Contended single-shard aborts retry locally; they must stay a
    # small fraction of the committed work and never go in-doubt.
    assert all(
        p["aborted"] <= 0.05 * p["committed"] for p in points.values()
    )
    assert all(p["in_doubt"] == 0 for p in points.values())
    # The acceptance bar: near-linear write scaling.
    assert tps[4] > tps[2] > tps[1]
    assert tps[4] >= 2.5 * tps[1]


def test_cross_shard_2pc_costs_bounded_overhead(benchmark):
    # 20% of NewOrder lines drawn from a remote warehouse: a heavy
    # cross-shard mix (the TPC-C spec uses 1%).
    def shootout():
        return {
            "local": run_point(2, remote_item_prob=0.0, seed=23),
            "remote": run_point(2, remote_item_prob=0.2, seed=23),
        }

    reports = benchmark.pedantic(shootout, rounds=1, iterations=1)
    local, remote = reports["local"], reports["remote"]
    print_table(
        "Cross-shard 2PC overhead - 2 shards, 20%% remote NewOrder lines",
        ["mix", "tps", "2PC commits", "presumed aborts", "in-doubt"],
        [
            (name, "%.0f" % r["tps"], r["workload_2pc"],
             r["coordinator"]["presumed_aborts"], r["in_doubt"])
            for name, r in (("all-local", local), ("20% remote", remote))
        ],
    )
    RESULTS["twopc_overhead"] = {
        "local_tps": local["tps"],
        "remote_tps": remote["tps"],
        "tps_ratio": remote["tps"] / local["tps"],
        "two_phase_commits": remote["workload_2pc"],
    }
    benchmark.extra_info["tps_ratio"] = round(
        remote["tps"] / local["tps"], 3
    )
    # The remote mix really exercises 2PC...
    assert remote["workload_2pc"] > 0
    assert local["workload_2pc"] == 0
    # ...cleanly (no in-doubt leftovers in a healthy run)...
    assert remote["in_doubt"] == 0
    assert remote["coordinator"]["unresolved_in_doubt"] == 0
    # ...and costs a bounded slice of throughput, not a collapse.
    assert remote["tps"] >= 0.5 * local["tps"]
