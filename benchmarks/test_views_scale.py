"""Incremental views: view-served aggregates vs executor rescans.

A maintained view answers an eligible GROUP BY aggregate in O(result):
finalize the per-group states and shape the rows.  A fresh rescan pays
O(table): every page fetched and every row folded, per query.  This
benchmark shows, in virtual time:

- the per-query cost of the view-served path is >= 10x below the rescan
  path at a modest table size (the PR's acceptance bar);
- the gap *grows* with the base table: rescan cost scales with rows
  while the view-served cost stays flat (same group count).

Emits ``benchmarks/BENCH_views.json`` with the headline numbers.
"""

import pytest
from conftest import emit_bench_json, print_table

from repro.engine.codec import INT, Column, Schema
from repro.harness.deployment import DeploymentSpec

RESULTS = {}

GROUPS = 16
QUERIES = 20
VIEW_SQL = (
    "SELECT grp, COUNT(*) AS n, SUM(val) AS total, AVG(val) AS mean "
    "FROM facts GROUP BY grp"
)
QUERY_SQL = VIEW_SQL + " ORDER BY grp"


@pytest.fixture(scope="module", autouse=True)
def _emit_json():
    yield
    if RESULTS:
        emit_bench_json("views", RESULTS)


def build(rows, seed=11):
    dep = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=3)
        .with_replicas(1)
        .with_views({"facts_by_grp": VIEW_SQL})
        .build()
    )
    dep.start()
    dep.engine.create_table(
        "facts",
        Schema([
            Column("k", INT()),
            Column("grp", INT()),
            Column("val", INT()),
        ]),
        ["k"],
    )
    dep.fleet.sync_catalogs()

    def load():
        engine = dep.engine
        txn = engine.begin()
        for k in range(rows):
            yield from engine.insert(
                txn, "facts", [k, k % GROUPS, k % 97]
            )
        yield from engine.commit(txn)

    proc = dep.env.process(load(), name="views-bench-load")
    dep.env.run_until_event(proc)
    deadline = dep.env.now + 5.0
    while dep.env.now < deadline and not dep.views.caught_up():
        dep.run_for(0.002)
    assert dep.views.caught_up()
    return dep


def measure(dep, rows):
    """Virtual seconds per query: view-served vs fresh primary rescan."""
    env = dep.env
    session = dep.frontend_session("views-bench")

    def run(gen):
        proc = env.process(gen, name="views-bench-query")
        env.run_until_event(proc)
        return proc.value

    # Warm both paths once (plan caches, EBP) before timing.
    served = run(session.execute(QUERY_SQL))
    direct = run(dep.frontend.primary_session.execute(QUERY_SQL))
    assert session.last_route == "view:facts_by_grp"
    assert served.rows == direct.rows and served.columns == direct.columns

    start = env.now
    for _ in range(QUERIES):
        run(session.execute(QUERY_SQL))
    view_cost = (env.now - start) / QUERIES
    assert session.last_route == "view:facts_by_grp"

    start = env.now
    for _ in range(QUERIES):
        run(dep.frontend.primary_session.execute(QUERY_SQL))
    rescan_cost = (env.now - start) / QUERIES

    return {
        "rows": rows,
        "view_us": view_cost * 1e6,
        "rescan_us": rescan_cost * 1e6,
        "speedup": rescan_cost / view_cost,
    }


def test_view_serves_aggregates_an_order_of_magnitude_cheaper(benchmark):
    def sweep():
        points = []
        for rows in (2000, 8000):
            dep = build(rows)
            points.append(measure(dep, rows))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Incremental views - per-query cost, %d-group aggregate "
        "(%d queries each)" % (GROUPS, QUERIES),
        ["base rows", "view-served (us)", "rescan (us)", "speedup"],
        [
            (p["rows"], "%.1f" % p["view_us"], "%.1f" % p["rescan_us"],
             "%.1fx" % p["speedup"])
            for p in points
        ],
    )
    RESULTS["per_query"] = {
        str(p["rows"]): {
            "view_us": round(p["view_us"], 3),
            "rescan_us": round(p["rescan_us"], 3),
            "speedup": round(p["speedup"], 2),
        }
        for p in points
    }
    benchmark.extra_info["speedup_8k"] = round(points[-1]["speedup"], 1)
    # The acceptance bar: view-served answers cost >= 10x less than the
    # per-query rescan they replace.
    assert all(p["speedup"] >= 10.0 for p in points)
    # O(result) vs O(table): growing the base table leaves the
    # view-served cost roughly flat but inflates the rescan cost, so
    # the gap widens.
    small, large = points
    assert large["rescan_us"] > 2.0 * small["rescan_us"]
    assert large["view_us"] < 2.0 * small["view_us"]
    assert large["speedup"] > small["speedup"]
