"""Figure 12: effect of EBP size on the internal lookup workload.

Paper (17 TB table, 120 GB buffer pool, ~95% hit rate): a 256 GB EBP cuts
average response time by 45% and P99 by >50%; each doubling of the EBP
helps about half as much as the last (diminishing returns as the eligible
data is exhausted).
"""

from conftest import print_table

from repro.harness.experiments import fig12_ebp_size_sweep


def test_fig12_ebp_size(benchmark):
    points = benchmark.pedantic(
        lambda: fig12_ebp_size_sweep(lookups=2400, clients=8),
        rounds=1,
        iterations=1,
    )
    base = points[0]
    print_table(
        "Figure 12 - EBP size sweep (paper: -45% avg / -50% p99 at 256GB, "
        "diminishing returns)",
        ["EBP size", "avg ms", "p99 ms", "avg reduction", "p99 reduction"],
        [
            (
                p.ebp_label,
                "%.3f" % p.avg_ms,
                "%.3f" % p.p99_ms,
                "%.0f%%" % ((1 - p.avg_ms / base.avg_ms) * 100),
                "%.0f%%" % ((1 - p.p99_ms / base.p99_ms) * 100),
            )
            for p in points
        ],
    )
    first = points[1]
    benchmark.extra_info["avg_reduction_first_pct"] = round(
        (1 - first.avg_ms / base.avg_ms) * 100
    )
    benchmark.extra_info["p99_reduction_first_pct"] = round(
        (1 - first.p99_ms / base.p99_ms) * 100
    )
    # Shape 1: the first EBP size already cuts latency substantially.
    assert first.avg_ms < 0.75 * base.avg_ms  # paper: -45%
    assert first.p99_ms < 0.75 * base.p99_ms  # paper: -50%
    # Shape 2: every size helps, monotonically.
    avgs = [p.avg_ms for p in points]
    assert all(b <= a * 1.05 for a, b in zip(avgs, avgs[1:]))
    # Shape 3: diminishing returns - the first doubling's absolute gain
    # exceeds the second doubling's.
    gain1 = points[1].avg_ms - points[2].avg_ms
    gain2 = points[2].avg_ms - points[3].avg_ms
    assert gain1 >= gain2 - 1e-9
