"""Figure 14: push-down query speedups on the 22 CH queries.

Paper: with PQ + EBP enabled, queries 1, 6, 11, 13, 15, 20, 22 improve by
4x-24x (aggregation or selective-filter push-down); the geometric mean over
all 22 queries is ~2.8x.  A second experiment isolates the *plan change*
(hash-join-friendly plans chosen when PQ is on) via hints: plan change
alone leaves ~2x of geo-mean speedup attributable to push-down proper.
"""

from conftest import print_table

from repro.sim.metrics import geomean

PAPER_WINNERS = (1, 6, 11, 13, 15, 20, 22)


def test_fig14_pushdown(benchmark, fig14_results):
    rows, mean = benchmark.pedantic(
        lambda: fig14_results, rounds=1, iterations=1
    )
    print_table(
        "Figure 14 - push-down speedup per CH query "
        "(paper: winners 4-24x, geo-mean ~2.8x)",
        ["query", "PQ+EBP speedup", "plan-change-only", "paper winner?"],
        [
            (
                "Q%d" % r.query_no,
                "%.2fx" % r.pq_speedup,
                "%.2fx" % r.plan_change_speedup,
                "yes" if r.query_no in PAPER_WINNERS else "",
            )
            for r in rows
        ]
        + [("geo-mean", "%.2fx" % mean, "", "")],
    )
    by = {r.query_no: r for r in rows}
    benchmark.extra_info["geomean_speedup"] = round(mean, 2)
    winner_speedups = [by[q].pq_speedup for q in PAPER_WINNERS if q in by]
    benchmark.extra_info["winners_geomean"] = round(geomean(winner_speedups), 2)
    # Shape 1: overall geo-mean gain is solid (paper: ~2.8x).
    assert mean > 1.8
    # Shape 2: the paper's winner set shows multi-x gains as a group.
    assert geomean(winner_speedups) > 3.0
    # Shape 3: the aggregation-push-down queries are each big winners.
    for q in (1, 6, 22):
        assert by[q].pq_speedup > 4.0
    # Shape 4: plan change alone explains only part of the win on the
    # aggregation queries (push-down proper does the heavy lifting).
    for q in (1, 6, 22):
        assert by[q].pq_speedup > 2.0 * by[q].plan_change_speedup
