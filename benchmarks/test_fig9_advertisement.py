"""Figure 9: the internal advertisement library (strict latency SLO).

Paper: replaying identical traffic, stock veDB sees P99 up to ~150 ms and
worst cases around ~500 ms; with AStore most queries complete in ~5 ms and
the maximum drops to ~20 ms - roughly a 20x improvement, much larger than
the single-threaded micro-benchmark's 7x because one-sided RDMA removes
CPU contention between simultaneous transactions.
"""

from conftest import print_table

from repro.harness.experiments import fig9_advertisement


def test_fig9_advertisement(benchmark):
    results = benchmark.pedantic(
        lambda: fig9_advertisement(clients=24, duration=0.6),
        rounds=1,
        iterations=1,
    )
    by = {r.deployment: r for r in results}
    print_table(
        "Figure 9 - advertisement workload (paper: ~20x average, max 500->20 ms)",
        ["deployment", "avg ms", "p99 ms", "max ms", "ops"],
        [
            (
                r.deployment,
                "%.3f" % r.avg_ms,
                "%.2f" % r.p99_ms,
                "%.2f" % r.max_ms,
                r.operations,
            )
            for r in results
        ],
    )
    avg_ratio = by["stock"].avg_ms / by["astore"].avg_ms
    p99_ratio = by["stock"].p99_ms / by["astore"].p99_ms
    max_ratio = by["stock"].max_ms / by["astore"].max_ms
    benchmark.extra_info["avg_speedup"] = round(avg_ratio, 1)
    benchmark.extra_info["p99_speedup"] = round(p99_ratio, 1)
    benchmark.extra_info["max_speedup"] = round(max_ratio, 1)
    # Shape: an order-of-magnitude class gap on the tail, bigger than the
    # single-threaded 7x (contention amplifies AStore's advantage).
    assert avg_ratio > 3.0
    assert p99_ratio > 5.0
    assert max_ratio > 3.0
    # The SLO story: AStore's p99 lands in the single-digit-ms class.
    assert by["astore"].p99_ms < 10.0
