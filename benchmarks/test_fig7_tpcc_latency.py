"""Figure 7: TPC-C P95 transaction latency vs concurrent clients.

Paper: veDB+AStore has consistently lower latency; P95 reduced by up to
50% at 32 clients.  (P99 "similar and omitted" in the paper; we report it.)
"""

from conftest import print_table


def test_fig7_tpcc_latency(benchmark, tpcc_sweep_results):
    points = benchmark.pedantic(
        lambda: tpcc_sweep_results, rounds=1, iterations=1
    )
    by = {(p.deployment, p.clients): p for p in points}
    clients = sorted({p.clients for p in points})
    print_table(
        "Figure 7 - TPC-C P95 latency vs clients (paper: up to -50%)",
        ["clients", "stock p95 ms", "astore p95 ms", "reduction",
         "stock p99 ms", "astore p99 ms"],
        [
            (
                c,
                "%.2f" % by[("stock", c)].p95_ms,
                "%.2f" % by[("astore", c)].p95_ms,
                "%.0f%%"
                % (
                    (1 - by[("astore", c)].p95_ms / max(by[("stock", c)].p95_ms,
                                                        1e-9))
                    * 100
                ),
                "%.2f" % by[("stock", c)].p99_ms,
                "%.2f" % by[("astore", c)].p99_ms,
            )
            for c in clients
        ],
    )
    reductions = {
        c: 1 - by[("astore", c)].p95_ms / by[("stock", c)].p95_ms
        for c in clients
    }
    benchmark.extra_info["best_p95_reduction_pct"] = round(
        max(reductions.values()) * 100
    )
    # Shape: AStore's P95 is lower at every client count, and the best
    # reduction is at least the paper's 50% somewhere in the sweep.
    for c in clients:
        assert by[("astore", c)].p95_ms < by[("stock", c)].p95_ms
    assert max(reductions.values()) >= 0.40
