"""Columnar batch execution: parity with row mode, and widened push-down.

The contract under test is exact: for every CH query, batch mode (with
or without PQ) must produce byte-identical rows/columns to the row-mode
Volcano executor, because the vectorized spine materializes the same row
dicts in the same order before the row-mode Project/Sort/Limit tail.
"""

import pytest

from repro.common import KB, MB
from repro.engine.dbengine import EngineConfig
from repro.harness.deployment import Deployment, DeploymentConfig
from repro.query.ast import ColumnRef
from repro.query.columnar import ColumnBatch, resolve_column
from repro.query.plan import Aggregate, HashJoin, Project, SeqScan, explain
from repro.workloads.tpcch import CH_QUERIES, TpcchConfig, TpcchDatabase, ch_query_sql


# Small but multi-page: order_line spills past the buffer pool so PQ has
# remote pages to push to.
CH_CONFIG = TpcchConfig(
    warehouses=2,
    customers_per_district=20,
    items=200,
    initial_orders_per_district=20,
    suppliers=50,
)


@pytest.fixture(scope="module")
def ch_dep():
    # 4-page buffer pool: scans reach past DRAM, so marked fragments have
    # remote pages to dispatch storage-side.
    dep = Deployment(
        DeploymentConfig.astore_pq(
            seed=11,
            engine=EngineConfig(buffer_pool_bytes=4 * 16 * KB),
            ebp_capacity_bytes=64 * MB,
        )
    )
    dep.start()
    database = TpcchDatabase(dep.engine, CH_CONFIG, dep.seeds.stream("ch-load"))

    def load(env):
        yield from database.load()
        yield env.timeout(0.3)  # let eviction populate the EBP

    dep.env.run_until_event(dep.env.process(load(dep.env)))
    return dep


def execute(dep, session, sql):
    proc = dep.env.process(session.execute(sql))
    dep.env.run_until_event(proc)
    return proc.value


# ---------------------------------------------------------------------------
# ColumnBatch container
# ---------------------------------------------------------------------------


def make_batch():
    return ColumnBatch(
        ("t.a", "t.b", "u.a"),
        [[1, 2, 3], ["x", "y", "z"], [10, 20, 30]],
    )


def test_batch_project_is_zero_copy():
    batch = make_batch()
    pruned = batch.project(["u.a", "t.a"])
    assert pruned.keys == ("u.a", "t.a")
    assert pruned.arrays[0] is batch.arrays[2]
    assert pruned.arrays[1] is batch.arrays[0]
    assert pruned.n == 3


def test_batch_gather_full_selection_returns_self():
    batch = make_batch()
    assert batch.gather([0, 1, 2]) is batch
    picked = batch.gather([2, 0])
    assert picked.n == 2
    assert picked.column("t.b") == ["z", "x"]


def test_batch_extend_and_to_rows():
    batch = make_batch()
    batch.extend(ColumnBatch(batch.keys, [[4], ["w"], [40]]))
    assert batch.n == 4
    rows = batch.to_rows()
    assert rows[3] == {"t.a": 4, "t.b": "w", "u.a": 40}
    assert list(rows[0].keys()) == ["t.a", "t.b", "u.a"]


def test_batch_zero_columns_keeps_row_count():
    batch = ColumnBatch((), [], 5)
    assert batch.n == 5
    assert batch.to_rows() == [{}] * 5


def test_resolve_column_mirrors_row_fallback_chain():
    keys = ("t.a", "t.b", "u.a", "plain")
    assert resolve_column(keys, ColumnRef("a", "t")) == 0
    assert resolve_column(keys, ColumnRef("plain")) == 3
    # Unique dotted suffix resolves; ambiguous one does not.
    assert resolve_column(keys, ColumnRef("b")) == 1
    assert resolve_column(keys, ColumnRef("a")) is None
    assert resolve_column(keys, ColumnRef("missing")) is None


# ---------------------------------------------------------------------------
# CH-query parity: batch mode is byte-identical to row mode
# ---------------------------------------------------------------------------


def _canonical(rows):
    # Round floats so ulp drift cannot perturb the sort, then order rows
    # canonically: ORDER BY ties break on input order, which pushdown's
    # local-then-tasks merge legitimately permutes.
    normal = [
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    ]
    return sorted(normal, key=repr)


def assert_rows_close(got, want, context):
    """Order-insensitive row-set equality tolerating float last-ulp drift.

    Used only across *pushdown configurations*: distributed partial
    aggregation sums each task's rows independently before merging, which
    reassociates float addition versus one sequential scan (inherent to
    scatter-gather aggregation, and present before batch mode existed).
    """
    assert len(got) == len(want), context
    for got_row, want_row in zip(_canonical(got), _canonical(want)):
        for g, w in zip(got_row, want_row):
            if isinstance(g, float) and isinstance(w, float):
                assert g == pytest.approx(w, rel=1e-9, abs=1e-9), context
            else:
                assert g == w, context


@pytest.mark.parametrize("query_no", sorted(CH_QUERIES))
def test_ch_query_parity_across_modes(ch_dep, query_no):
    dep = ch_dep
    sessions = {
        "row": dep.new_session(enable_pushdown=False, batch_mode=False),
        "batch": dep.new_session(enable_pushdown=False, batch_mode=True),
        "row-pq": dep.new_session(
            enable_pushdown=True, force_hash_joins=True, batch_mode=False
        ),
        "batch-pq": dep.new_session(
            enable_pushdown=True, force_hash_joins=True, batch_mode=True
        ),
    }
    sql = ch_query_sql(query_no)
    results = {label: execute(dep, s, sql) for label, s in sessions.items()}
    for label in ("batch", "row-pq", "batch-pq"):
        assert results[label].columns == results["row"].columns, label
    # Batch execution is byte-identical to row execution under the same
    # pushdown configuration: the vectorized spine materializes the same
    # dicts in the same order.
    assert results["batch"].rows == results["row"].rows, (
        "CH Q%d: batch diverged from row mode" % query_no
    )
    assert results["batch-pq"].rows == results["row-pq"].rows, (
        "CH Q%d: batch+PQ diverged from row+PQ" % query_no
    )
    # Across pushdown configurations only float summation order differs.
    assert_rows_close(
        results["batch-pq"].rows,
        results["row"].rows,
        "CH Q%d: pushdown changed results" % query_no,
    )


# ---------------------------------------------------------------------------
# Widened push-down: GROUP BY partials, DISTINCT, hash build
# ---------------------------------------------------------------------------


def test_groupby_pushdown_is_planned_and_matches(ch_dep):
    dep = ch_dep
    session = dep.new_session(enable_pushdown=True, batch_mode=True)
    sql = ch_query_sql(1)  # single-table GROUP BY aggregate
    plan = session.plan(sql)
    assert "partial-agg" in explain(plan)
    row_pq = execute(
        dep, dep.new_session(enable_pushdown=True, batch_mode=False), sql
    )
    pushed = execute(dep, session, sql)
    assert pushed.rows == row_pq.rows
    assert_rows_close(
        pushed.rows,
        execute(
            dep, dep.new_session(enable_pushdown=False, batch_mode=False), sql
        ).rows,
        "Q1 pushdown",
    )
    assert session.pushdown_runtime.tasks_dispatched > 0


def test_distinct_aggregate_is_pushable(ch_dep):
    dep = ch_dep
    sql = (
        "SELECT ol_number, count(DISTINCT ol_i_id) AS n_items "
        "FROM order_line GROUP BY ol_number ORDER BY ol_number"
    )
    session = dep.new_session(enable_pushdown=True, batch_mode=True)
    plan = session.plan(sql)
    assert "partial-agg" in explain(plan)
    # DISTINCT merges value sets, not floats: exact across configurations.
    row = execute(
        dep, dep.new_session(enable_pushdown=False, batch_mode=False), sql
    )
    pushed = execute(dep, session, sql)
    assert pushed.columns == row.columns
    assert pushed.rows == row.rows


def _find_hash_join(node):
    if isinstance(node, HashJoin):
        return node
    for attr in ("child", "left", "right", "outer"):
        sub = getattr(node, attr, None)
        if sub is not None:
            found = _find_hash_join(sub)
            if found is not None:
                return found
    return None


def test_hash_build_pushdown_exercised(ch_dep):
    dep = ch_dep
    sql = (
        "SELECT ol_number, count(*) AS n, sum(ol_amount) AS total "
        "FROM order_line JOIN stock ON ol_i_id = s_i_id "
        "WHERE s_quantity > 10 GROUP BY ol_number ORDER BY ol_number"
    )
    session = dep.new_session(
        enable_pushdown=True,
        force_hash_joins=True,
        pushdown_row_threshold=1,  # force-mark every scan
        batch_mode=True,
    )
    plan = session.plan(sql)
    join = _find_hash_join(plan)
    assert join is not None
    assert isinstance(join.right, SeqScan)
    assert join.right.hash_keys
    assert join.right.pushdown
    assert "hash-build" in explain(plan)
    row_pq = execute(
        dep,
        dep.new_session(
            enable_pushdown=True,
            force_hash_joins=True,
            pushdown_row_threshold=1,
            batch_mode=False,
        ),
        sql,
    )
    pushed = execute(dep, session, sql)
    assert pushed.rows == row_pq.rows
    assert_rows_close(
        pushed.rows,
        execute(
            dep, dep.new_session(enable_pushdown=False, batch_mode=False), sql
        ).rows,
        "hash-build pushdown",
    )
    assert session.pushdown_runtime.hash_build_fragments > 0


# ---------------------------------------------------------------------------
# Cost-based PQ eligibility
# ---------------------------------------------------------------------------


def _scan_of(plan):
    node = plan
    while not isinstance(node, SeqScan):
        node = getattr(node, "child", None) or getattr(node, "left")
    return node


def test_cost_based_pushes_reductive_aggregate(ch_dep):
    session = ch_dep.new_session(enable_pushdown=True)  # threshold=None
    plan = session.plan(
        "SELECT ol_number, count(*) FROM order_line GROUP BY ol_number"
    )
    assert _scan_of(plan).pushdown


def test_cost_based_skips_small_table(ch_dep):
    # supplier fits in a couple of pages: shipping the fragment costs more
    # than scanning locally, so the cost model declines to push.
    session = ch_dep.new_session(enable_pushdown=True)
    plan = session.plan("SELECT count(*) FROM supplier")
    assert not _scan_of(plan).pushdown


def test_cost_based_skips_wide_open_row_fragment(ch_dep):
    # An unfiltered row fragment returns every row over the wire: the
    # estimated result bytes exceed the page bytes saved, so no push.
    session = ch_dep.new_session(enable_pushdown=True)
    plan = session.plan("SELECT ol_amount FROM order_line")
    assert not _scan_of(plan).pushdown


def test_explicit_threshold_overrides_cost_model(ch_dep):
    session = ch_dep.new_session(enable_pushdown=True, pushdown_row_threshold=10)
    plan = session.plan("SELECT count(*) FROM supplier")
    assert _scan_of(plan).pushdown
    session = ch_dep.new_session(
        enable_pushdown=True, pushdown_row_threshold=10**9
    )
    plan = session.plan(
        "SELECT ol_number, count(*) FROM order_line GROUP BY ol_number"
    )
    assert not _scan_of(plan).pushdown
