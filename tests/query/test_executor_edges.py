"""Executor edge cases: NULL ordering, empty inputs, nested plans."""

import pytest

from repro.common import QueryError
from repro.engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from repro.harness.deployment import Deployment, DeploymentConfig


def make_db():
    dep = Deployment(DeploymentConfig.astore_log(seed=3))
    dep.start()
    engine = dep.engine
    engine.create_table(
        "t",
        Schema(
            [
                Column("id", INT()),
                Column("maybe", INT(), nullable=True),
                Column("name", VARCHAR(16)),
            ]
        ),
        ["id"],
    )

    def load(env):
        txn = engine.begin()
        rows = [
            [1, 30, "c"],
            [2, None, "a"],
            [3, 10, "b"],
            [4, None, "d"],
            [5, 20, "e"],
        ]
        for row in rows:
            yield from engine.insert(txn, "t", row)
        yield from engine.commit(txn)

    proc = dep.env.process(load(dep.env))
    dep.env.run_until_event(proc)
    return dep, dep.new_session(enable_pushdown=False)


def execute(dep, session, sql):
    proc = dep.env.process(session.execute(sql))
    dep.env.run_until_event(proc)
    return proc.value


def test_order_by_asc_puts_nulls_somewhere_stable():
    dep, session = make_db()
    result = execute(dep, session, "SELECT id FROM t ORDER BY maybe")
    ids = [r[0] for r in result.rows]
    non_null_order = [i for i in ids if i in (3, 5, 1)]
    assert non_null_order == [3, 5, 1]  # 10, 20, 30
    assert set(ids) == {1, 2, 3, 4, 5}


def test_order_by_desc():
    dep, session = make_db()
    result = execute(
        dep, session, "SELECT id FROM t WHERE maybe > 0 ORDER BY maybe DESC"
    )
    assert [r[0] for r in result.rows] == [1, 5, 3]


def test_null_filtered_out_by_comparison():
    dep, session = make_db()
    result = execute(dep, session, "SELECT count(*) FROM t WHERE maybe > 0")
    assert result.rows == [(3,)]


def test_aggregates_skip_nulls():
    dep, session = make_db()
    result = execute(
        dep, session, "SELECT count(maybe), sum(maybe), avg(maybe) FROM t"
    )
    count, total, mean = result.rows[0]
    assert count == 3
    assert total == 60
    assert mean == pytest.approx(20.0)


def test_empty_table_scan():
    dep, session = make_db()
    dep.engine.create_table(
        "empty", Schema([Column("id", INT())]), ["id"]
    )
    result = execute(dep, session, "SELECT * FROM empty")
    assert result.rows == []
    result = execute(dep, session, "SELECT count(*) FROM empty")
    assert result.rows == [(0,)]


def test_limit_zero():
    dep, session = make_db()
    result = execute(dep, session, "SELECT id FROM t LIMIT 0")
    assert result.rows == []


def test_group_by_expression():
    dep, session = make_db()
    result = execute(
        dep, session,
        "SELECT id / 3, count(*) FROM t GROUP BY id / 3 ORDER BY id / 3",
    )
    # ids 1..5 -> 1/3, 2/3, 1, 4/3, 5/3 (float division buckets)
    assert sum(r[1] for r in result.rows) == 5


def test_projection_alias_referenced_in_order_by():
    dep, session = make_db()
    result = execute(
        dep, session,
        "SELECT id * 2 AS doubled FROM t WHERE maybe > 0 ORDER BY doubled DESC",
    )
    assert [r[0] for r in result.rows] == [10, 6, 2]


def test_update_via_sql_with_expression():
    dep, session = make_db()
    execute(dep, session, "UPDATE t SET maybe = id * 100 WHERE maybe = NULL")
    # maybe = NULL comparisons are false: nothing updated.
    result = execute(dep, session, "SELECT count(*) FROM t WHERE maybe > 99")
    assert result.rows == [(0,)]


def test_delete_everything_and_reinsert():
    dep, session = make_db()
    execute(dep, session, "DELETE FROM t")
    assert execute(dep, session, "SELECT count(*) FROM t").rows == [(0,)]
    execute(dep, session, "INSERT INTO t VALUES (9, 9, 'back')")
    assert execute(dep, session, "SELECT name FROM t WHERE id = 9").rows == [
        ("back",)
    ]


def test_self_join_with_aliases():
    dep, session = make_db()
    result = execute(
        dep, session,
        "SELECT a.id, b.id FROM t a JOIN t b ON a.id = b.id WHERE a.id < 3 "
        "ORDER BY a.id",
    )
    assert result.rows == [(1, 1), (2, 2)]


def test_arithmetic_divide_in_filter():
    dep, session = make_db()
    result = execute(
        dep, session, "SELECT id FROM t WHERE maybe / 10 = 2"
    )
    assert result.rows == [(5,)]
