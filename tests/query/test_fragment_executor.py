"""Unit tests for the storage-side fragment executor (pure compute)."""

import pytest

from repro.common import KB, PageId
from repro.engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from repro.engine.page import Page, PageOp, apply_op
from repro.query.ast import AggCall, BinOp, ColumnRef, Literal
from repro.query.executor import finalize_agg_states, merge_agg_states
from repro.query.pushdown import PushdownFragment, execute_fragment_on_pages


SCHEMA = Schema(
    [Column("id", INT()), Column("grp", INT()), Column("amount", DECIMAL(2))]
)


def make_pages(rows, per_page=4):
    pages = []
    lsn = 0
    for start in range(0, len(rows), per_page):
        page = Page(PageId(1, start // per_page), size=4 * KB)
        for offset, row in enumerate(rows[start : start + per_page]):
            lsn += 1
            apply_op(
                page,
                PageOp("insert", slot=offset, row=SCHEMA.encode(list(row))),
                lsn,
            )
        pages.append(page)
    return pages


def fragment(filter_expr=None, partial_agg=None):
    frag = PushdownFragment(
        table_name="t",
        binding="t",
        schema_names=tuple(SCHEMA.names),
        filter=filter_expr,
        partial_agg=partial_agg,
    )
    frag._schema = SCHEMA
    return frag


ROWS = [(i, i % 3, float(i)) for i in range(20)]


def test_plain_scan_returns_all_rows():
    (kind, batch), scanned = execute_fragment_on_pages(fragment(), make_pages(ROWS))
    assert kind == "batch"
    assert scanned == 20
    rows = batch.to_rows()
    assert len(rows) == 20
    assert rows[0]["t.id"] == 0


def test_filter_applies():
    filt = BinOp(">=", ColumnRef("amount", "t"), Literal(15.0))
    (kind, batch), scanned = execute_fragment_on_pages(
        fragment(filt), make_pages(ROWS)
    )
    assert scanned == 20  # the fragment scans everything...
    assert batch.n == 5  # ...but returns only matches


def test_partial_aggregation_groups():
    aggs = [AggCall("count", None), AggCall("sum", ColumnRef("amount", "t"))]
    groups = [ColumnRef("grp", "t")]
    (kind, partials), _ = execute_fragment_on_pages(
        fragment(partial_agg=(groups, aggs)), make_pages(ROWS)
    )
    assert kind == "partials"
    assert len(partials) == 3  # grp in {0,1,2}
    totals = {}
    for (key, _sample), states in partials:
        values = finalize_agg_states(states, aggs)
        totals[key[0]] = (values[aggs[0]], values[aggs[1]])
    for grp in range(3):
        expected = [r for r in ROWS if r[1] == grp]
        assert totals[grp][0] == len(expected)
        assert totals[grp][1] == pytest.approx(sum(r[2] for r in expected))


def test_partials_merge_across_tasks():
    """Merging per-server partials equals one global aggregation."""
    aggs = [
        AggCall("count", None),
        AggCall("sum", ColumnRef("amount", "t")),
        AggCall("min", ColumnRef("amount", "t")),
        AggCall("max", ColumnRef("amount", "t")),
        AggCall("avg", ColumnRef("amount", "t")),
    ]
    groups = []
    pages = make_pages(ROWS)
    # Split the pages across two "servers".
    (_, part_a), _ = execute_fragment_on_pages(
        fragment(partial_agg=(groups, aggs)), pages[:2]
    )
    (_, part_b), _ = execute_fragment_on_pages(
        fragment(partial_agg=(groups, aggs)), pages[2:]
    )
    (key_a, _), states_a = part_a[0]
    (_key_b, _), states_b = part_b[0]
    merge_agg_states(states_a, states_b, aggs)
    values = finalize_agg_states(states_a, aggs)
    amounts = [r[2] for r in ROWS]
    assert values[aggs[0]] == 20
    assert values[aggs[1]] == pytest.approx(sum(amounts))
    assert values[aggs[2]] == min(amounts)
    assert values[aggs[3]] == max(amounts)
    assert values[aggs[4]] == pytest.approx(sum(amounts) / len(amounts))


def test_empty_pages():
    (kind, batch), scanned = execute_fragment_on_pages(fragment(), [])
    assert kind == "batch"
    assert batch.n == 0
    assert batch.to_rows() == []
    assert scanned == 0


def test_hash_build_fragment_returns_keys_and_batch():
    filt = BinOp(">=", ColumnRef("amount", "t"), Literal(10.0))
    frag = fragment(filt)
    frag.hash_keys = [ColumnRef("grp", "t")]
    (kind, payload), scanned = execute_fragment_on_pages(frag, make_pages(ROWS))
    assert kind == "hash"
    key_tuples, batch = payload
    assert scanned == 20
    assert batch.n == 10
    assert len(key_tuples) == batch.n
    assert key_tuples == [(r[1],) for r in ROWS if r[2] >= 10.0]
