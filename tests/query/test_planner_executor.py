"""Tests for the planner and the single-threaded executor."""

import pytest

from repro.common import QueryError
from repro.engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from repro.harness.deployment import Deployment, DeploymentConfig
from repro.query.plan import Aggregate, HashJoin, IndexNLJoin, Limit, Project, SeqScan, Sort, explain
from repro.query.planner import PlannerConfig


def make_db(pushdown=False, rows=120):
    dep = Deployment(DeploymentConfig.astore_pq() if pushdown
                     else DeploymentConfig.astore_log())
    dep.start()
    engine = dep.engine
    engine.create_table(
        "users",
        Schema(
            [
                Column("id", INT()),
                Column("grp", INT()),
                Column("name", VARCHAR(24)),
                Column("score", DECIMAL(2)),
            ]
        ),
        ["id"],
    )
    engine.create_table(
        "events",
        Schema(
            [
                Column("e_id", INT()),
                Column("user_id", INT()),
                Column("kind", VARCHAR(12)),
                Column("value", DECIMAL(2)),
            ]
        ),
        ["e_id"],
    )

    def load(env):
        txn = engine.begin()
        for i in range(rows):
            yield from engine.insert(
                txn, "users", [i, i % 4, "name%d" % i, float(i)]
            )
        for i in range(rows * 2):
            yield from engine.insert(
                txn,
                "events",
                [i, i % rows, "click" if i % 3 else "view", float(i % 50)],
            )
        yield from engine.commit(txn)

    proc = dep.env.process(load(dep.env))
    dep.env.run_until_event(proc)
    session = dep.new_session(
        enable_pushdown=pushdown, pushdown_row_threshold=10
    )
    return dep, session


def execute(dep, session, sql):
    proc = dep.env.process(session.execute(sql))
    dep.env.run_until_event(proc)
    return proc.value


# ---------------------------------------------------------------------------
# Planner shapes
# ---------------------------------------------------------------------------


def test_plan_simple_scan_with_filter():
    dep, session = make_db()
    plan = session.plan("SELECT name FROM users WHERE grp = 1")
    assert isinstance(plan, Project)
    scan = plan.child
    assert isinstance(scan, SeqScan)
    assert scan.filter is not None
    assert scan.projection == ["grp", "name"]
    assert not scan.pushdown  # push-down disabled in this session


def test_plan_single_table_aggregate_marks_partial_agg_when_pq():
    dep, session = make_db(pushdown=True)
    plan = session.plan("SELECT grp, count(*) FROM users GROUP BY grp")
    agg = plan.child
    assert isinstance(agg, Aggregate)
    assert agg.from_partials
    scan = agg.child
    assert scan.pushdown and scan.partial_agg is not None


def test_plan_small_table_not_pushed():
    dep, session = make_db(pushdown=True, rows=5)
    plan = session.plan("SELECT grp, count(*) FROM users GROUP BY grp")
    agg = plan.child
    assert not agg.from_partials  # below the row threshold


def test_plan_join_defaults_to_index_nl_for_pk_join():
    dep, session = make_db()
    plan = session.plan(
        "SELECT name FROM events JOIN users ON user_id = id WHERE value > 10"
    )
    node = plan.child
    assert isinstance(node, IndexNLJoin)
    assert node.inner_table == "users"


def test_plan_pq_session_prefers_hash_join():
    dep, session = make_db(pushdown=True)
    plan = session.plan(
        "SELECT name FROM events JOIN users ON user_id = id WHERE value > 10"
    )
    node = plan.child
    assert isinstance(node, HashJoin)
    assert isinstance(node.right, SeqScan) and node.right.pushdown


def test_plan_order_limit():
    dep, session = make_db()
    plan = session.plan("SELECT id FROM users ORDER BY id DESC LIMIT 3")
    assert isinstance(plan, Limit)
    assert isinstance(plan.child, Sort)


def test_plan_join_without_equi_condition_rejected():
    dep, session = make_db()
    with pytest.raises(QueryError, match="equi-join"):
        session.plan("SELECT name FROM events JOIN users ON value > score")


def test_explain_renders_tree():
    dep, session = make_db(pushdown=True)
    text = explain(session.plan("SELECT grp, count(*) FROM users GROUP BY grp"))
    assert "Aggregate" in text and "PUSHDOWN" in text


def test_unknown_table_rejected():
    dep, session = make_db()
    with pytest.raises(QueryError):
        session.plan("SELECT a FROM nonexistent")


def test_ambiguous_column_rejected():
    dep, session = make_db()
    with pytest.raises(QueryError):
        # 'value' only in events, fine; 'id'... use a genuinely ambiguous
        # alias-free query where both tables share no columns: craft one by
        # self-joining users.
        session.plan(
            "SELECT name FROM users a JOIN users b ON a.id = b.id WHERE grp = 1"
        )


# ---------------------------------------------------------------------------
# Executor correctness
# ---------------------------------------------------------------------------


def test_point_filter_and_projection():
    dep, session = make_db()
    result = execute(dep, session, "SELECT name, score FROM users WHERE id = 7")
    assert result.columns == ["name", "score"]
    assert result.rows == [("name7", 7.0)]


def test_aggregate_group_by_matches_python():
    dep, session = make_db()
    result = execute(
        dep, session,
        "SELECT grp, count(*) AS n, sum(score) AS total FROM users GROUP BY grp "
        "ORDER BY grp",
    )
    expected = {}
    for i in range(120):
        g = i % 4
        n, t = expected.get(g, (0, 0.0))
        expected[g] = (n + 1, t + float(i))
    assert [(g, n, t) for (g, n, t) in result.rows] == [
        (g, expected[g][0], expected[g][1]) for g in sorted(expected)
    ]


def test_global_aggregate_without_group_by():
    dep, session = make_db()
    result = execute(dep, session, "SELECT count(*), avg(score) FROM users")
    assert result.rows[0][0] == 120
    assert result.rows[0][1] == pytest.approx(sum(range(120)) / 120.0)


def test_global_aggregate_over_empty_result():
    dep, session = make_db()
    result = execute(
        dep, session, "SELECT count(*), sum(score) FROM users WHERE id > 9999"
    )
    assert result.rows == [(0, None)]


def test_count_distinct():
    dep, session = make_db()
    result = execute(dep, session, "SELECT count(DISTINCT grp) FROM users")
    assert result.rows == [(4,)]


def test_join_correctness_both_algorithms():
    dep, session = make_db()
    sql = (
        "SELECT kind, count(*) AS n FROM events JOIN users ON user_id = id "
        "WHERE grp = 2 GROUP BY kind ORDER BY kind"
    )
    nl_result = execute(dep, session, sql)
    hash_session = dep.new_session(enable_pushdown=False, force_hash_joins=True)
    hash_result = execute(dep, hash_session, sql)
    assert nl_result.rows == hash_result.rows
    assert sum(n for _, n in nl_result.rows) == 60  # 240 events / 4 groups


def test_order_by_desc_and_limit():
    dep, session = make_db()
    result = execute(
        dep, session, "SELECT id FROM users ORDER BY score DESC LIMIT 5"
    )
    assert [r[0] for r in result.rows] == [119, 118, 117, 116, 115]


def test_select_star():
    dep, session = make_db()
    result = execute(dep, session, "SELECT * FROM users WHERE id < 2 ORDER BY id")
    assert len(result.rows) == 2
    assert len(result.columns) == 4


def test_expression_in_projection():
    dep, session = make_db()
    result = execute(dep, session, "SELECT score * 2 AS double FROM users WHERE id = 3")
    assert result.rows == [(6.0,)]


def test_agg_expression_avg_from_sum_count():
    dep, session = make_db()
    result = execute(
        dep, session,
        "SELECT sum(score) / count(*) AS mean FROM users WHERE grp = 0",
    )
    scores = [float(i) for i in range(120) if i % 4 == 0]
    assert result.rows[0][0] == pytest.approx(sum(scores) / len(scores))


def test_sql_insert_update_delete_roundtrip():
    dep, session = make_db()
    execute(dep, session, "INSERT INTO users (id, grp, name, score) VALUES (999, 9, 'new', 1.5)")
    result = execute(dep, session, "SELECT name FROM users WHERE id = 999")
    assert result.rows == [("new",)]
    execute(dep, session, "UPDATE users SET score = score + 1 WHERE id = 999")
    result = execute(dep, session, "SELECT score FROM users WHERE id = 999")
    assert result.rows == [(2.5,)]
    execute(dep, session, "DELETE FROM users WHERE id = 999")
    result = execute(dep, session, "SELECT count(*) FROM users WHERE id = 999")
    assert result.rows == [(0,)]


def test_between_and_in_filters():
    dep, session = make_db()
    result = execute(
        dep, session,
        "SELECT count(*) FROM users WHERE id BETWEEN 10 AND 19 AND grp IN (0, 1)",
    )
    expected = sum(1 for i in range(10, 20) if i % 4 in (0, 1))
    assert result.rows == [(expected,)]
