"""Tests for the SQL lexer and parser."""

import pytest

from repro.common import QueryError
from repro.query.ast import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    InList,
    Like,
    Literal,
    Select,
    UnaryOp,
)
from repro.query.lexer import Token, tokenize
from repro.query.parser import parse


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


def test_tokenize_basic_select():
    tokens = kinds("SELECT a FROM t")
    assert tokens == [
        ("keyword", "select"),
        ("name", "a"),
        ("keyword", "from"),
        ("name", "t"),
    ]


def test_tokenize_numbers():
    assert kinds("1 2.5 0.125") == [
        ("number", 1),
        ("number", 2.5),
        ("number", 0.125),
    ]


def test_tokenize_string_with_escape():
    assert kinds("'it''s'") == [("string", "it's")]


def test_tokenize_unterminated_string():
    with pytest.raises(QueryError, match="unterminated"):
        tokenize("SELECT 'oops")


def test_tokenize_operators():
    values = [v for _, v in kinds("a <= b >= c != d <> e = f")]
    assert values == ["a", "<=", "b", ">=", "c", "!=", "d", "!=", "e", "=", "f"]


def test_tokenize_qualified_name():
    assert kinds("t1.col") == [("name", "t1"), ("punct", "."), ("name", "col")]


def test_tokenize_rejects_garbage():
    with pytest.raises(QueryError):
        tokenize("SELECT @x")


def test_keywords_case_insensitive():
    assert kinds("select SELECT SeLeCt") == [("keyword", "select")] * 3


# ---------------------------------------------------------------------------
# Parser: SELECT
# ---------------------------------------------------------------------------


def test_parse_simple_select():
    stmt = parse("SELECT a, b FROM t WHERE a > 5")
    assert isinstance(stmt, Select)
    assert [item.output_name for item in stmt.items] == ["a", "b"]
    assert stmt.table.name == "t"
    assert isinstance(stmt.where, BinOp)
    assert stmt.where.op == ">"


def test_parse_star():
    stmt = parse("SELECT * FROM t")
    assert stmt.star


def test_parse_aliases():
    stmt = parse("SELECT a AS x, b y FROM t AS u")
    assert [item.output_name for item in stmt.items] == ["x", "y"]
    assert stmt.table.binding == "u"


def test_parse_aggregates():
    stmt = parse("SELECT count(*), sum(a), avg(b), min(c), max(d) FROM t")
    funcs = [item.expr.func for item in stmt.items]
    assert funcs == ["count", "sum", "avg", "min", "max"]
    assert stmt.items[0].expr.argument is None
    assert stmt.has_aggregates


def test_parse_count_distinct():
    stmt = parse("SELECT count(DISTINCT a) FROM t")
    assert stmt.items[0].expr.distinct


def test_star_only_for_count():
    with pytest.raises(QueryError):
        parse("SELECT sum(*) FROM t")


def test_parse_group_order_limit():
    stmt = parse(
        "SELECT a, count(*) FROM t GROUP BY a ORDER BY a DESC, count(*) LIMIT 7"
    )
    assert len(stmt.group_by) == 1
    assert stmt.order_by[0][1] is True  # DESC
    assert stmt.order_by[1][1] is False
    assert stmt.limit == 7


def test_parse_join():
    stmt = parse(
        "SELECT a FROM t JOIN u ON t.id = u.tid INNER JOIN v ON u.id = v.uid"
    )
    assert len(stmt.joins) == 2
    assert stmt.joins[0].table.name == "u"


def test_parse_between_in_like():
    stmt = parse(
        "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) "
        "AND c LIKE 'pre%'"
    )
    conjuncts = []

    def flatten(e):
        if isinstance(e, BinOp) and e.op == "and":
            flatten(e.left)
            flatten(e.right)
        else:
            conjuncts.append(e)

    flatten(stmt.where)
    assert isinstance(conjuncts[0], Between)
    assert isinstance(conjuncts[1], InList)
    assert conjuncts[1].options == (1, 2, 3)
    assert isinstance(conjuncts[2], Like)


def test_parse_arithmetic_precedence():
    stmt = parse("SELECT a + b * 2 FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parse_parentheses():
    stmt = parse("SELECT (a + b) * 2 FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_parse_not_and_or_precedence():
    stmt = parse("SELECT a FROM t WHERE NOT a = 1 OR b = 2 AND c = 3")
    # OR is the top: (NOT a=1) OR (b=2 AND c=3)
    assert stmt.where.op == "or"
    assert isinstance(stmt.where.left, UnaryOp)
    assert stmt.where.right.op == "and"


def test_parse_negative_literals():
    stmt = parse("SELECT a FROM t WHERE a > -5")
    assert isinstance(stmt.where.right, UnaryOp)


def test_parse_qualified_columns():
    stmt = parse("SELECT t.a FROM t WHERE t.a = 1")
    assert stmt.items[0].expr.table == "t"


def test_trailing_garbage_rejected():
    with pytest.raises(QueryError, match="trailing"):
        parse("SELECT a FROM t nonsense extra")


def test_missing_from_rejected():
    with pytest.raises(QueryError):
        parse("SELECT a WHERE a = 1")


def test_limit_requires_integer():
    with pytest.raises(QueryError):
        parse("SELECT a FROM t LIMIT 2.5")


# ---------------------------------------------------------------------------
# Parser: DML
# ---------------------------------------------------------------------------


def test_parse_insert():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert stmt.table == "t"
    assert stmt.columns == ["a", "b"]
    assert stmt.rows == [[1, "x"], [2, "y"]]


def test_parse_insert_without_columns_and_null():
    stmt = parse("INSERT INTO t VALUES (1, NULL, -3)")
    assert stmt.columns is None
    assert stmt.rows == [[1, None, -3]]


def test_parse_update():
    stmt = parse("UPDATE t SET a = a + 1, b = 'z' WHERE id = 5")
    assert set(stmt.assignments) == {"a", "b"}
    assert stmt.where is not None


def test_parse_delete():
    stmt = parse("DELETE FROM t WHERE a < 3")
    assert stmt.table == "t"


def test_parse_statement_with_semicolon():
    assert isinstance(parse("SELECT a FROM t;"), Select)


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def test_eval_arithmetic_and_comparison():
    expr = parse("SELECT a FROM t WHERE a * 2 + 1 >= 7").where
    assert expr.eval({"a": 3}) is True
    assert expr.eval({"a": 2}) is False


def test_eval_null_comparisons_are_false():
    expr = parse("SELECT a FROM t WHERE a > 5").where
    assert expr.eval({"a": None}) is False


def test_eval_like_variants():
    row = {"s": "hello world"}
    assert Like(ColumnRef("s"), "hello%").eval(row)
    assert Like(ColumnRef("s"), "%world").eval(row)
    assert Like(ColumnRef("s"), "%lo wo%").eval(row)
    assert not Like(ColumnRef("s"), "nope%").eval(row)
    assert Like(ColumnRef("s"), "hello world").eval(row)


def test_eval_qualified_fallback():
    ref = ColumnRef("a")
    assert ref.eval({"t.a": 42}) == 42
    with pytest.raises(QueryError, match="not in row"):
        ref.eval({"t.a": 1, "u.a": 2})  # ambiguous


def test_agg_call_eval_outside_aggregate_rejected():
    with pytest.raises(QueryError):
        AggCall("sum", ColumnRef("a")).eval({"a": 1})
