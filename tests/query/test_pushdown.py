"""Tests for the push-down framework: equivalence, task split, fallback."""

import pytest

from repro.common import KB, MB
from repro.engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from repro.engine.dbengine import EngineConfig
from repro.harness.deployment import Deployment, DeploymentConfig


def make_db(rows=300, bp_pages=16):
    """A PQ deployment with a tiny buffer pool so most pages live in EBP."""
    dep = Deployment(
        DeploymentConfig.astore_pq(
            engine=EngineConfig(buffer_pool_bytes=bp_pages * 16 * KB),
            ebp_capacity_bytes=64 * MB,
        )
    )
    dep.start()
    engine = dep.engine
    engine.create_table(
        "facts",
        Schema(
            [
                Column("f_id", INT()),
                Column("dim", INT()),
                Column("label", VARCHAR(16)),
                Column("amount", DECIMAL(2)),
                Column("pad", VARCHAR(2100)),  # ~7 rows/page: force spill
            ]
        ),
        ["f_id"],
    )

    def load(env):
        txn = engine.begin()
        for i in range(rows):
            yield from engine.insert(
                txn, "facts",
                [i, i % 7, "L%d" % (i % 3), float(i % 100), "p" * 2048],
            )
            if i % 100 == 99:
                yield from engine.commit(txn)
                txn = engine.begin()
        yield from engine.commit(txn)
        yield env.timeout(0.3)  # let eviction populate the EBP

    proc = dep.env.process(load(dep.env))
    dep.env.run_until_event(proc)
    return dep


def execute(dep, session, sql):
    proc = dep.env.process(session.execute(sql))
    dep.env.run_until_event(proc)
    return proc.value


AGG_SQL = (
    "SELECT dim, count(*) AS n, sum(amount) AS total FROM facts "
    "WHERE amount >= 10 GROUP BY dim ORDER BY dim"
)
FILTER_SQL = "SELECT f_id, label FROM facts WHERE dim = 3 ORDER BY f_id"


def test_pushdown_results_equal_local_execution():
    dep = make_db()
    pq = dep.new_session(enable_pushdown=True, pushdown_row_threshold=10)
    local = dep.new_session(enable_pushdown=False)
    for sql in (AGG_SQL, FILTER_SQL):
        pq_result = execute(dep, pq, sql)
        local_result = execute(dep, local, sql)
        assert pq_result.columns == local_result.columns
        assert pq_result.rows == local_result.rows


def test_pushdown_uses_storage_side_execution():
    dep = make_db()
    pq = dep.new_session(enable_pushdown=True, pushdown_row_threshold=10)
    execute(dep, pq, AGG_SQL)
    runtime = pq.pushdown_runtime
    assert runtime.tasks_dispatched > 0
    assert runtime.pages_via_ebp + runtime.pages_via_pagestore > 0


def test_pushdown_partial_agg_numbers():
    dep = make_db()
    pq = dep.new_session(enable_pushdown=True, pushdown_row_threshold=10)
    result = execute(dep, pq, AGG_SQL)
    expected = {}
    for i in range(300):
        amount = float(i % 100)
        if amount >= 10:
            d = i % 7
            n, t = expected.get(d, (0, 0.0))
            expected[d] = (n + 1, t + amount)
    assert [(d, n, t) for (d, n, t) in result.rows] == [
        (d, expected[d][0], expected[d][1]) for d in sorted(expected)
    ]


def test_pushdown_is_faster_for_scan_heavy_query():
    """The headline effect: storage-side parallel execution beats pumping
    remote pages through the single engine thread."""
    dep = make_db(rows=1200, bp_pages=8)
    pq = dep.new_session(enable_pushdown=True, pushdown_row_threshold=10)
    local = dep.new_session(enable_pushdown=False)

    def timed(session, sql):
        def work(env):
            start = env.now
            yield from session.execute(sql)
            return env.now - start

        proc = dep.env.process(work(dep.env))
        dep.env.run_until_event(proc)
        return proc.value

    local_time = timed(local, AGG_SQL)
    pq_time = timed(pq, AGG_SQL)
    assert pq_time < local_time


def test_pushdown_survives_astore_server_crash():
    """Tasks that fail fall back to the engine path; results stay correct."""
    dep = make_db()
    pq = dep.new_session(enable_pushdown=True, pushdown_row_threshold=10)
    baseline = execute(dep, pq, AGG_SQL)
    victim = next(iter(dep.astore.servers.values()))
    victim.crash()
    after = execute(dep, pq, AGG_SQL)
    assert after.rows == baseline.rows


def test_pushdown_sees_fresh_buffer_pool_pages():
    """Pages dirtied in the BP after EBP caching must be processed locally,
    not from the stale EBP copy."""
    dep = make_db()
    pq = dep.new_session(enable_pushdown=True, pushdown_row_threshold=10)
    engine = dep.engine

    def mutate(env):
        txn = engine.begin()
        yield from engine.update(txn, "facts", (0,), {"amount": 9999.0})
        yield from engine.commit(txn)

    proc = dep.env.process(mutate(dep.env))
    dep.env.run_until_event(proc)
    result = execute(
        dep, pq, "SELECT sum(amount) FROM facts WHERE amount >= 9000"
    )
    assert result.rows == [(9999.0,)]


def test_pushdown_threshold_respected():
    dep = make_db(rows=50)
    pq = dep.new_session(enable_pushdown=True, pushdown_row_threshold=100000)
    execute(dep, pq, AGG_SQL)
    assert pq.pushdown_runtime.tasks_dispatched == 0
