"""Compiled predicates vs interpreted ``Expr.eval``, column-major decode,
and (when hypothesis is installed) property tests over random queries.

CI installs only pytest; the property tests skip cleanly there and run in
dev environments that have hypothesis.
"""

import pytest

from repro.common import KB, QueryError
from repro.engine.codec import (
    BIGINT,
    DECIMAL,
    FLOAT,
    INT,
    VARCHAR,
    Column,
    Schema,
)
from repro.query.ast import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    InList,
    Like,
    Literal,
    Param,
    UnaryOp,
)
from repro.query.columnar import (
    ColumnBatch,
    compile_batch_expr,
    compile_batch_predicate,
)
from repro.query.predicate import (
    NotCompilable,
    compile_expr,
    compile_row_expr,
    compile_row_predicate,
)


# ---------------------------------------------------------------------------
# Compiled-vs-interpreted matrix (NULL semantics, LIKE, BETWEEN, IN)
# ---------------------------------------------------------------------------

ROWS = [
    {"t.a": 1, "t.b": 10, "t.s": "alpha"},
    {"t.a": 5, "t.b": None, "t.s": "beta"},
    {"t.a": None, "t.b": 3, "t.s": None},
    {"t.a": -2, "t.b": 0, "t.s": "a"},
    {"t.a": 5, "t.b": 5, "t.s": "gamma"},
]

A = ColumnRef("a", "t")
B = ColumnRef("b", "t")
S = ColumnRef("s", "t")

EXPRS = [
    BinOp("=", A, Literal(5)),
    BinOp("!=", A, Literal(5)),
    BinOp("<", A, B),
    BinOp("<=", A, Literal(1)),
    BinOp(">", B, Literal(2)),
    BinOp(">=", A, B),
    BinOp("+", A, B),
    BinOp("-", A, Literal(1)),
    BinOp("*", A, B),
    BinOp("and", BinOp(">", A, Literal(0)), BinOp("<", B, Literal(9))),
    BinOp("or", BinOp("=", A, Literal(-2)), BinOp("=", B, Literal(5))),
    UnaryOp("not", BinOp(">", A, Literal(0))),
    UnaryOp("-", A),
    Between(A, Literal(0), Literal(5)),
    Between(B, Literal(3), Literal(10)),
    InList(A, (1, 5, 7)),
    InList(S, ("alpha", "a")),
    Like(S, "a%"),
    Like(S, "%a"),
    Like(S, "%et%"),
    Like(S, "alpha"),
]


def batch_of(rows):
    keys = tuple(rows[0].keys())
    return ColumnBatch(keys, [[row[k] for row in rows] for k in keys])


@pytest.mark.parametrize("expr", EXPRS, ids=repr)
def test_compiled_row_expr_matches_eval(expr):
    compiled = compile_row_expr(expr)
    for row in ROWS:
        try:
            want = expr.eval(row)
        except TypeError:
            with pytest.raises(TypeError):
                compiled(row)
            continue
        assert compiled(row) == want, row


@pytest.mark.parametrize("expr", EXPRS, ids=repr)
def test_compiled_batch_expr_matches_eval(expr):
    batch = batch_of(ROWS)
    compiled = compile_batch_expr(expr, batch)
    for i, row in enumerate(ROWS):
        try:
            want = expr.eval(row)
        except TypeError:
            with pytest.raises(TypeError):
                compiled(i)
            continue
        assert compiled(i) == want, row


def test_param_and_aggcall_compile_to_lazy_raisers():
    for expr in (Param(0), AggCall("count", None)):
        compiled = compile_row_expr(expr)  # compiling must not raise
        with pytest.raises(QueryError):
            compiled(ROWS[0])


def test_unresolved_batch_column_is_not_compilable():
    batch = batch_of(ROWS)
    with pytest.raises(NotCompilable):
        compile_batch_expr(ColumnRef("missing"), batch)


def test_compile_expr_rejects_unknown_nodes():
    class Exotic:
        pass

    with pytest.raises(NotCompilable):
        compile_expr(Exotic(), lambda ref: None)


def test_compiled_predicate_coerces_truthiness():
    predicate = compile_row_predicate(BinOp("+", A, B))
    assert predicate({"t.a": 1, "t.b": 1}) is True
    assert predicate({"t.a": 1, "t.b": -1}) is False
    assert predicate({"t.a": None, "t.b": 4}) is False  # NULL arithmetic


# ---------------------------------------------------------------------------
# Column-major decode equivalence
# ---------------------------------------------------------------------------


def test_decode_into_matches_decode_for_all_types():
    schema = Schema(
        [
            Column("i", INT(), nullable=True),
            Column("big", BIGINT(), nullable=True),
            Column("f", FLOAT(), nullable=True),
            Column("d", DECIMAL(2), nullable=True),
            Column("s", VARCHAR(20), nullable=True),
        ]
    )
    rows = [
        [1, 2**40, 1.5, 12.34, "hello"],
        [-7, -(2**33), -0.25, -99.99, ""],
        [None, None, None, None, None],
        [0, 0, 0.0, 0.0, "unicodeé"],
    ]
    arrays = [[] for _ in schema.names]
    for row in rows:
        data = schema.encode(list(row))
        assert schema.decode(data) == row
        schema.decode_into(data, arrays)
    for position, _name in enumerate(schema.names):
        assert arrays[position] == [row[position] for row in rows]


# ---------------------------------------------------------------------------
# Property tests (optional dependency)
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


_num = st.sampled_from([A, B]) | st.integers(-10, 10).map(Literal)
_cmp = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])

_base_predicate = st.one_of(
    st.tuples(_cmp, _num, _num).map(lambda t: BinOp(t[0], t[1], t[2])),
    st.tuples(_num, st.integers(-10, 0), st.integers(1, 10)).map(
        lambda t: Between(t[0], Literal(t[1]), Literal(t[2]))
    ),
    st.tuples(_num, st.lists(st.integers(-10, 10), min_size=1, max_size=4)).map(
        lambda t: InList(t[0], tuple(t[1]))
    ),
    st.tuples(
        st.just(S), st.sampled_from(["a%", "%a", "%lp%", "beta", "%"])
    ).map(lambda t: Like(t[0], t[1])),
)

_predicate = st.recursive(
    _base_predicate,
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["and", "or"]), children, children).map(
            lambda t: BinOp(t[0], t[1], t[2])
        ),
        children.map(lambda c: UnaryOp("not", c)),
    ),
    max_leaves=6,
)

_value = st.one_of(st.none(), st.integers(-10, 10))
_text = st.one_of(st.none(), st.sampled_from(["alpha", "beta", "a", "help", ""]))
_row = st.fixed_dictionaries({"t.a": _value, "t.b": _value, "t.s": _text})


@settings(max_examples=200, deadline=None)
@given(expr=_predicate, rows=st.lists(_row, min_size=1, max_size=6))
def test_property_compiled_predicates_match_eval(expr, rows):
    compiled = compile_row_predicate(expr)
    batch = batch_of(rows)
    batch_compiled = compile_batch_predicate(expr, batch)
    for i, row in enumerate(rows):
        want = bool(expr.eval(row))
        assert compiled(row) == want
        assert batch_compiled(i) == want


# Query-level: random filters/projections/group-bys through the full SQL
# engine, row mode vs batch mode (and both again under push-down).

_dep_cache = {}


def _query_dep():
    if "dep" not in _dep_cache:
        from repro.common import MB
        from repro.engine.dbengine import EngineConfig
        from repro.harness.deployment import Deployment, DeploymentConfig

        dep = Deployment(
            DeploymentConfig.astore_pq(
                seed=3,
                engine=EngineConfig(buffer_pool_bytes=4 * 16 * KB),
                ebp_capacity_bytes=16 * MB,
            )
        )
        dep.start()
        engine = dep.engine
        engine.create_table(
            "facts",
            Schema(
                [
                    Column("f_id", INT()),
                    Column("grp", INT()),
                    Column("label", VARCHAR(16)),
                    Column("amount", DECIMAL(2)),
                    Column("pad", VARCHAR(600)),
                ]
            ),
            ["f_id"],
        )

        def load(env):
            txn = engine.begin()
            for i in range(400):
                yield from engine.insert(
                    txn,
                    "facts",
                    [i, i % 7, "L%d" % (i % 5), float(i % 90) + 0.25, "p" * 500],
                )
            yield from engine.commit(txn)
            yield env.timeout(0.3)

        dep.env.run_until_event(dep.env.process(load(dep.env)))
        _dep_cache["dep"] = dep
        _dep_cache["sessions"] = {
            "row": dep.new_session(enable_pushdown=False, batch_mode=False),
            "batch": dep.new_session(enable_pushdown=False, batch_mode=True),
            "row-pq": dep.new_session(
                enable_pushdown=True, pushdown_row_threshold=10, batch_mode=False
            ),
            "batch-pq": dep.new_session(
                enable_pushdown=True, pushdown_row_threshold=10, batch_mode=True
            ),
        }
    return _dep_cache["dep"], _dep_cache["sessions"]


_sql_filter = st.one_of(
    st.just(""),
    st.sampled_from(
        [
            "WHERE amount >= 45.25",
            "WHERE grp = 3",
            "WHERE grp IN (1, 2, 5)",
            "WHERE f_id BETWEEN 50 AND 250",
            "WHERE label LIKE 'L1%'",
            "WHERE NOT grp = 0 AND amount < 80.0",
            "WHERE grp = 2 OR grp = 6",
        ]
    ),
)

_sql_projection = st.lists(
    st.sampled_from(["f_id", "grp", "label", "amount"]),
    min_size=1,
    max_size=4,
    unique=True,
)

_sql_aggs = st.lists(
    st.sampled_from(
        [
            "count(*) AS n",
            "sum(amount) AS s",
            "avg(amount) AS av",
            "min(f_id) AS mn",
            "max(f_id) AS mx",
            "count(DISTINCT grp) AS dg",
        ]
    ),
    min_size=1,
    max_size=3,
    unique=True,
)

_sql_query = st.one_of(
    st.tuples(_sql_projection, _sql_filter).map(
        lambda t: "SELECT %s FROM facts %s" % (", ".join(t[0]), t[1])
    ),
    st.tuples(_sql_aggs, _sql_filter, st.booleans()).map(
        lambda t: "SELECT %s FROM facts %s %s"
        % (
            ("grp, " if t[2] else "") + ", ".join(t[0]),
            t[1],
            "GROUP BY grp" if t[2] else "",
        )
    ),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(sql=_sql_query)
def test_property_random_queries_match_across_modes(sql):
    dep, sessions = _query_dep()

    def run(session):
        proc = dep.env.process(session.execute(sql))
        dep.env.run_until_event(proc)
        return proc.value

    results = {label: run(s) for label, s in sessions.items()}
    assert results["batch"].columns == results["row"].columns, sql
    assert results["batch"].rows == results["row"].rows, sql
    assert results["batch-pq"].columns == results["row-pq"].columns, sql
    assert results["batch-pq"].rows == results["row-pq"].rows, sql
