"""Tests for the statement/plan cache and prepared statements."""

import dataclasses

import pytest

from repro.common import QueryError
from repro.engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from repro.harness.deployment import Deployment, DeploymentConfig
from repro.query.ast import Literal, Select
from repro.query.cache import ParseCache, bind_expr, parse_entry
from repro.query.executor import QuerySession


def make_db(rows=40):
    dep = Deployment(DeploymentConfig.astore_log())
    dep.start()
    engine = dep.engine
    engine.create_table(
        "users",
        Schema([
            Column("id", INT()),
            Column("grp", INT()),
            Column("name", VARCHAR(24)),
            Column("score", DECIMAL(2)),
        ]),
        ["id"],
    )

    def load(env):
        txn = engine.begin()
        for i in range(rows):
            yield from engine.insert(
                txn, "users", [i, i % 4, "name%d" % i, float(i)]
            )
        yield from engine.commit(txn)

    proc = dep.env.process(load(dep.env))
    dep.env.run_until_event(proc)
    return dep


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


# ---------------------------------------------------------------------------
# ParseCache
# ---------------------------------------------------------------------------


def test_parse_cache_hit_returns_same_statement_object():
    cache = ParseCache(capacity=4)
    first, nparams = cache.entry("SELECT id FROM users WHERE grp = 1")
    second, _ = cache.entry("SELECT id FROM users WHERE grp = 1")
    assert first is second
    assert nparams == 0
    assert cache.hits == 1 and cache.misses == 1


def test_parse_cache_lru_evicts_least_recently_used():
    cache = ParseCache(capacity=2)
    cache.entry("SELECT id FROM users")          # a
    cache.entry("SELECT grp FROM users")         # b
    cache.entry("SELECT id FROM users")          # touch a -> b is LRU
    cache.entry("SELECT name FROM users")        # evicts b
    assert len(cache) == 2
    before = cache.misses
    cache.entry("SELECT id FROM users")          # still cached
    assert cache.misses == before
    cache.entry("SELECT grp FROM users")         # b was evicted: re-parse
    assert cache.misses == before + 1


def test_parse_cache_counts_params():
    cache = ParseCache(capacity=4)
    _, nparams = cache.entry(
        "SELECT id FROM users WHERE grp = ? AND score > ?")
    assert nparams == 2


def test_cached_statements_are_frozen():
    statement, _ = parse_entry("SELECT id FROM users WHERE grp = 1")
    assert isinstance(statement, Select)
    with pytest.raises(dataclasses.FrozenInstanceError):
        statement.table = "other"


def test_bind_expr_returns_same_object_when_no_params():
    statement, _ = parse_entry("SELECT id FROM users WHERE grp = 3")
    bound = bind_expr(statement.where, ())
    assert bound is statement.where


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


def test_plan_cache_hits_on_repeat_and_replans_after_data_change():
    dep = make_db()
    cache = ParseCache(capacity=8)
    session = QuerySession(dep.engine, parse_cache=cache)
    engine = dep.engine
    sql = "SELECT COUNT(*) AS n FROM users WHERE grp = 1"

    first = run(dep, session.execute(sql))
    assert session.plan_cache_misses == 1
    second = run(dep, session.execute(sql))
    assert session.plan_cache_hits == 1
    assert [list(r) for r in first.rows] == [[10]]
    assert [list(r) for r in second.rows] == [[10]]

    def add(env):
        txn = engine.begin()
        yield from engine.insert(txn, "users", [100, 1, "late", 1.0])
        yield from engine.commit(txn)

    run(dep, add(dep.env))
    # row_count changed -> the cached plan's stats token is stale, the
    # statement replans, and the result reflects the new data.
    third = run(dep, session.execute(sql))
    assert session.plan_cache_misses == 2
    assert [list(r) for r in third.rows] == [[11]]


def test_cached_ast_not_mutated_across_sessions():
    dep = make_db()
    cache = ParseCache(capacity=8)
    one = QuerySession(dep.engine, parse_cache=cache)
    two = QuerySession(dep.engine, parse_cache=cache)
    sql = ("SELECT grp, COUNT(*) AS n, SUM(score) AS total FROM users "
           "WHERE id < 20 GROUP BY grp ORDER BY grp")
    statement = cache.entry(sql)[0]
    snapshot = dataclasses.asdict(statement)
    a = run(dep, one.execute(sql))
    b = run(dep, two.execute(sql))
    assert a.rows == b.rows
    assert cache.entry(sql)[0] is statement
    assert dataclasses.asdict(statement) == snapshot


# ---------------------------------------------------------------------------
# Prepared statements
# ---------------------------------------------------------------------------


def test_prepared_select_binds_params():
    dep = make_db()
    session = QuerySession(dep.engine)
    stmt = session.prepare("SELECT id, name FROM users WHERE id = ?")
    assert stmt.param_count == 1
    for key in (3, 17, 3):
        result = run(dep, stmt.execute(key))
        assert [list(r) for r in result.rows] == [[key, "name%d" % key]]


def test_prepared_select_reuses_plan_template():
    dep = make_db()
    session = QuerySession(dep.engine)
    stmt = session.prepare("SELECT COUNT(*) AS n FROM users WHERE grp = ?")
    run(dep, stmt.execute(0))
    template = stmt._template
    assert template is not None
    run(dep, stmt.execute(1))
    assert stmt._template is template  # no data change: same template


def test_prepared_dml_and_arity_errors():
    dep = make_db(rows=4)
    session = QuerySession(dep.engine)
    insert = session.prepare(
        "INSERT INTO users (id, grp, name, score) VALUES (?, ?, ?, ?)")
    run(dep, insert.execute(50, 2, "fifty", 5.0))
    update = session.prepare("UPDATE users SET name = ? WHERE id = ?")
    run(dep, update.execute("renamed", 50))
    check = run(dep, session.execute(
        "SELECT name FROM users WHERE id = 50"))
    assert [list(r) for r in check.rows] == [["renamed"]]

    with pytest.raises(QueryError):
        run(dep, insert.execute(1, 2, "short"))  # too few params
    with pytest.raises(QueryError):
        run(dep, update.execute("a", 1, "extra"))  # too many params


def test_unprepared_placeholder_rejected_by_execute():
    dep = make_db(rows=4)
    session = QuerySession(dep.engine)
    with pytest.raises(QueryError):
        run(dep, session.execute("SELECT id FROM users WHERE id = ?"))


def test_param_eval_unbound_raises():
    statement, _ = parse_entry("SELECT id FROM users WHERE id = ?")
    with pytest.raises(QueryError):
        statement.where.eval({"id": 1})
