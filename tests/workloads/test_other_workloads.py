"""Tests for the orders, ads, sysbench, lookup, and microbench workloads."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.sim.core import AllOf
from repro.workloads.ads import AdsClient, AdsConfig, AdsDatabase
from repro.workloads.lookup import LookupClient, LookupConfig, LookupDatabase
from repro.workloads.microbench import run_astore_micro, run_logstore_micro
from repro.workloads.orders import (
    WIDE_ROW_FILLER,
    OrdersClient,
    OrdersConfig,
    OrdersDatabase,
)
from repro.workloads.sysbench import SysbenchClient, SysbenchConfig, SysbenchDatabase


def deployment(seed=13):
    dep = Deployment(DeploymentConfig.astore_log(seed=seed))
    dep.start()
    return dep


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


# ---------------------------------------------------------------------------
# Orders
# ---------------------------------------------------------------------------


def test_orders_single_insert_is_wide():
    dep = deployment()
    database = OrdersDatabase(dep.engine, OrdersConfig(vendors=3))
    run(dep, database.load())
    client = OrdersClient(database, dep.seeds.stream("w"))

    def work(env):
        return (yield from client.single_insert())

    latency = run(dep, work(dep.env))
    assert latency is not None and latency > 0
    table = dep.engine.catalog.table("order_flow")
    assert table.row_count == 1
    # The row really is ~2 KB wide.
    page = None

    def fetch(env):
        page_no, slot = table.lookup((1,))
        return (yield from dep.engine.fetch_page(table.page_id(page_no)))

    page = run(dep, fetch(dep.env))
    row = next(iter(page.slots()))[1]
    assert len(row) > WIDE_ROW_FILLER


def test_orders_batch_updates_hot_balance():
    dep = deployment()
    database = OrdersDatabase(dep.engine, OrdersConfig(vendors=3,
                                                       hot_vendor_share=1.0,
                                                       orders_per_batch=4))
    run(dep, database.load())
    client = OrdersClient(database, dep.seeds.stream("w"))

    def work(env):
        yield from client.order_processing()
        return (yield from dep.engine.read_row(None, "vendor_account", (1,)))

    account = run(dep, work(dep.env))
    assert account[3] == 4  # v_order_count advanced once per batched order
    assert account[2] > 0
    assert dep.engine.catalog.table("order_flow").row_count == 4


def test_orders_hot_row_serializes_concurrent_batches():
    dep = deployment()
    database = OrdersDatabase(dep.engine, OrdersConfig(hot_vendor_share=1.0,
                                                       orders_per_batch=3))
    run(dep, database.load())
    clients = [OrdersClient(database, dep.seeds.stream("w%d" % i))
               for i in range(4)]
    procs = [dep.env.process(c.order_processing()) for c in clients]
    dep.env.run_until_event(AllOf(dep.env, procs))

    def check(env):
        return (yield from dep.engine.read_row(None, "vendor_account", (1,)))

    account = run(dep, check(dep.env))
    assert account[3] == 12  # no lost updates despite full contention


# ---------------------------------------------------------------------------
# Ads
# ---------------------------------------------------------------------------


def test_ads_mix_reads_and_updates():
    dep = deployment()
    database = AdsDatabase(dep.engine, AdsConfig(campaigns=50))
    run(dep, database.load())
    client = AdsClient(database, dep.seeds.stream("ads"))

    def work(env):
        for _ in range(60):
            yield from client.run_one()

    run(dep, work(dep.env))
    assert client.latencies.count == client.committed
    assert client.committed > 50
    table = dep.engine.catalog.table("campaign")
    assert table.row_count == 50


def test_ads_updates_are_durable():
    dep = deployment()
    database = AdsDatabase(dep.engine, AdsConfig(campaigns=10,
                                                 update_fraction=1.0,
                                                 zipf_theta=0.0))
    run(dep, database.load())
    client = AdsClient(database, dep.seeds.stream("ads"))

    def work(env):
        for _ in range(20):
            yield from client.run_one()
        total = 0
        for cp in range(1, 11):
            row = yield from dep.engine.read_row(None, "campaign", (cp,))
            total += row[4]
        return total

    total_impressions = run(dep, work(dep.env))
    assert total_impressions == 20


# ---------------------------------------------------------------------------
# sysbench
# ---------------------------------------------------------------------------


def test_sysbench_event_counts_statements():
    dep = deployment()
    database = SysbenchDatabase(dep.engine, SysbenchConfig(rows=200))
    run(dep, database.load())
    client = SysbenchClient(database, dep.seeds.stream("sb"))

    def work(env):
        return (yield from client.run_one())

    statements = run(dep, work(dep.env))
    config = database.config
    assert statements == (
        config.point_selects + config.range_scans + config.index_updates
    )
    assert client.operations == statements


def test_sysbench_loader():
    dep = deployment()
    database = SysbenchDatabase(dep.engine, SysbenchConfig(rows=150))
    run(dep, database.load())
    assert dep.engine.catalog.table("sbtest").row_count == 150


# ---------------------------------------------------------------------------
# Lookup
# ---------------------------------------------------------------------------


def test_lookup_client_mixes_pk_and_secondary():
    dep = deployment()
    database = LookupDatabase(dep.engine, LookupConfig(rows=300))
    run(dep, database.load())
    client = LookupClient(database, dep.seeds.stream("lk"))

    def work(env):
        yield from client.run_count(50)

    run(dep, work(dep.env))
    assert client.latencies.count == 50
    assert client.latencies.mean > 0


def test_lookup_table_has_priority_for_ebp():
    dep = deployment()
    database = LookupDatabase(dep.engine, LookupConfig(rows=10))
    assert dep.engine.catalog.table("records").priority == 1


# ---------------------------------------------------------------------------
# Microbench (Table II) calibration
# ---------------------------------------------------------------------------


def test_microbench_matches_paper_calibration():
    without_pmem = run_logstore_micro(writes=600)
    with_pmem = run_astore_micro(writes=600)
    # Paper: 0.638 ms vs 0.086 ms, ~7.4x.
    assert 0.35 < without_pmem.avg_latency_ms < 1.1
    assert 0.05 < with_pmem.avg_latency_ms < 0.15
    ratio = without_pmem.avg_latency_ms / with_pmem.avg_latency_ms
    assert 4.0 < ratio < 14.0
    # IOPS and bandwidth are consistent with the latencies.
    assert with_pmem.iops > without_pmem.iops
    assert with_pmem.bandwidth_mb_s > without_pmem.bandwidth_mb_s


def test_microbench_deterministic_with_seed():
    a = run_astore_micro(writes=200, seed=99)
    b = run_astore_micro(writes=200, seed=99)
    assert a.avg_latency_ms == b.avg_latency_ms
    assert a.iops == b.iops
