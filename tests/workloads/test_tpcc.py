"""TPC-C workload tests: loader shape, transactions, consistency checks."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.sim.core import AllOf
from repro.workloads.tpcc import TpccClient, TpccConfig, TpccDatabase, _c_last


SMALL = TpccConfig(
    warehouses=2, districts_per_warehouse=3, customers_per_district=8, items=30
)


def build(config=SMALL, seed=11):
    dep = Deployment(DeploymentConfig.astore_log(seed=seed))
    dep.start()
    database = TpccDatabase(dep.engine, config, dep.seeds.stream("load"))
    proc = dep.env.process(database.load())
    dep.env.run_until_event(proc)
    return dep, database


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


def read(dep, table, key):
    return run(dep, dep.engine.read_row(None, table, key))


def test_loader_row_counts():
    dep, database = build()
    catalog = dep.engine.catalog
    assert catalog.table("warehouse").row_count == 2
    assert catalog.table("district").row_count == 6
    assert catalog.table("customer").row_count == 48
    assert catalog.table("item").row_count == 30
    assert catalog.table("stock").row_count == 60
    assert catalog.table("orders").row_count == 0


def test_loader_with_initial_orders():
    config = TpccConfig(
        warehouses=1, districts_per_warehouse=2, customers_per_district=8,
        items=30, initial_orders_per_district=10,
    )
    dep, database = build(config)
    catalog = dep.engine.catalog
    assert catalog.table("orders").row_count == 20
    assert catalog.table("order_line").row_count > 100
    # Undelivered tail sits in new_order; ~30% per the loader.
    assert 0 < catalog.table("new_order").row_count < 20
    district = read(dep, "district", (1, 1))
    assert district[7] == 11  # d_next_o_id advanced past the loaded orders


def test_c_last_syllables():
    assert _c_last(0) == "BARBARBAR"
    assert _c_last(371) == "PRICALLYOUGHT"
    assert _c_last(999) == "EINGEINGEING"


def test_new_order_transaction_effects():
    dep, database = build()
    client = TpccClient(database, dep.seeds.stream("c0"))

    def work(env):
        txn = dep.engine.begin()
        yield from client.txn_new_order(txn)
        yield from dep.engine.commit(txn)

    run(dep, work(dep.env))
    catalog = dep.engine.catalog
    assert catalog.table("orders").row_count == 1
    assert catalog.table("new_order").row_count == 1
    assert catalog.table("order_line").row_count >= 1
    # Some district's next_o_id advanced to 2.
    advanced = 0
    for w in range(1, 3):
        for d in range(1, 4):
            district = read(dep, "district", (w, d))
            if district[7] == 2:
                advanced += 1
    assert advanced == 1


def test_payment_updates_ytd_chain():
    dep, database = build()
    client = TpccClient(database, dep.seeds.stream("c0"),
                        home_warehouse=1)

    def work(env):
        txn = dep.engine.begin()
        yield from client.txn_payment(txn)
        yield from dep.engine.commit(txn)

    run(dep, work(dep.env))
    warehouse = read(dep, "warehouse", (1,))
    assert warehouse[7] > 0  # w_ytd grew
    assert dep.engine.catalog.table("history").row_count == 1


def test_delivery_clears_new_orders():
    dep, database = build()
    client = TpccClient(database, dep.seeds.stream("c0"), home_warehouse=1)

    def work(env):
        for _ in range(3):
            txn = dep.engine.begin()
            yield from client.txn_new_order(txn)
            yield from dep.engine.commit(txn)
        before = dep.engine.catalog.table("new_order").row_count
        txn = dep.engine.begin()
        yield from client.txn_delivery(txn)
        yield from dep.engine.commit(txn)
        after = dep.engine.catalog.table("new_order").row_count
        return before, after

    before, after = run(dep, work(dep.env))
    assert before >= 1
    assert after < before


def test_mix_is_weighted_correctly():
    dep, database = build()
    client = TpccClient(database, dep.seeds.stream("mix"))
    draws = [client._pick_type() for _ in range(4000)]
    share = draws.count("new_order") / len(draws)
    assert 0.40 < share < 0.50
    share = draws.count("payment") / len(draws)
    assert 0.38 < share < 0.48


def test_consistency_w_ytd_equals_sum_d_ytd():
    """TPC-C consistency condition 1 after a concurrent run."""
    dep, database = build()
    clients = [
        TpccClient(database, dep.seeds.stream("c%d" % i)) for i in range(6)
    ]
    procs = [dep.env.process(c.run_for(0.15)) for c in clients]
    dep.env.run_until_event(AllOf(dep.env, procs))
    for w_id in range(1, 3):
        warehouse = read(dep, "warehouse", (w_id,))
        d_sum = 0.0
        for d_id in range(1, 4):
            district = read(dep, "district", (w_id, d_id))
            d_sum += district[6]
        assert warehouse[7] == pytest.approx(d_sum, abs=0.01)


def test_consistency_d_next_o_id_matches_orders():
    """Consistency condition 2: max(o_id) + 1 == d_next_o_id."""
    dep, database = build()
    clients = [
        TpccClient(database, dep.seeds.stream("c%d" % i)) for i in range(4)
    ]
    procs = [dep.env.process(c.run_for(0.15)) for c in clients]
    dep.env.run_until_event(AllOf(dep.env, procs))
    orders = dep.engine.catalog.table("orders")
    for w_id in range(1, 3):
        for d_id in range(1, 4):
            district = read(dep, "district", (w_id, d_id))
            max_o = 0
            for key, _loc in orders.pk_index.range((w_id, d_id), None):
                if key[:2] != (w_id, d_id):
                    break
                max_o = max(max_o, key[2])
            assert district[7] == max_o + 1


def test_run_one_records_latency_and_commits():
    dep, database = build()
    client = TpccClient(database, dep.seeds.stream("c0"))

    def work(env):
        for _ in range(10):
            yield from client.run_one()

    run(dep, work(dep.env))
    assert client.committed + client.aborted == 10
    assert client.latencies.count == client.committed
    assert client.latencies.mean > 0
