"""TPC-CH tests: dimension tables, and all 22 CH queries parse/plan/run."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.query.parser import parse
from repro.query.plan import Aggregate, SeqScan
from repro.workloads.tpcch import CH_QUERIES, TpcchConfig, TpcchDatabase, ch_query_sql


TINY = TpcchConfig(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=6,
    items=20,
    initial_orders_per_district=6,
    suppliers=10,
    nations=5,
    regions=2,
)


def build(seed=23):
    dep = Deployment(DeploymentConfig.astore_pq(seed=seed))
    dep.start()
    database = TpcchDatabase(dep.engine, TINY, dep.seeds.stream("load"))
    proc = dep.env.process(database.load())
    dep.env.run_until_event(proc)
    return dep, database


def test_dimension_tables_loaded():
    dep, database = build()
    catalog = dep.engine.catalog
    assert catalog.table("supplier").row_count == 10
    assert catalog.table("nation").row_count == 5
    assert catalog.table("region").row_count == 2


def test_all_22_queries_defined_and_parse():
    for query_no in range(1, 23):
        sql = ch_query_sql(query_no, TINY)
        statement = parse(sql)
        assert statement is not None


def test_unknown_query_number():
    with pytest.raises(KeyError):
        ch_query_sql(23)


def test_all_22_queries_plan_and_execute():
    dep, database = build()
    session = dep.new_session(enable_pushdown=True, pushdown_row_threshold=5)

    def work(env):
        row_counts = {}
        for query_no in sorted(CH_QUERIES):
            result = yield from session.execute(ch_query_sql(query_no, TINY))
            row_counts[query_no] = len(result.rows)
        return row_counts

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)
    row_counts = proc.value
    assert len(row_counts) == 22
    # The aggregation queries always produce output on a loaded database.
    assert row_counts[1] >= 1
    assert row_counts[6] == 1
    assert row_counts[22] >= 1


def test_pushdown_equivalence_on_ch_queries():
    """PQ on and off must agree on every CH query (correctness gate)."""
    dep, database = build()
    pq = dep.new_session(enable_pushdown=True, pushdown_row_threshold=5)
    local = dep.new_session(enable_pushdown=False, force_hash_joins=True)

    def work(env):
        mismatches = []
        for query_no in sorted(CH_QUERIES):
            sql = ch_query_sql(query_no, TINY)
            a = yield from pq.execute(sql)
            b = yield from local.execute(sql)
            if sorted(map(repr, a.rows)) != sorted(map(repr, b.rows)):
                mismatches.append(query_no)
        return mismatches

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)
    assert proc.value == []


def test_q1_and_q6_mark_aggregation_pushdown():
    dep, database = build()
    session = dep.new_session(enable_pushdown=True, pushdown_row_threshold=5)
    for query_no in (1, 6):
        plan = session.plan(ch_query_sql(query_no, TINY))
        node = plan
        while not isinstance(node, Aggregate):
            node = node.child
        assert node.from_partials
        assert isinstance(node.child, SeqScan) and node.child.pushdown


def test_q1_aggregation_matches_manual_computation():
    dep, database = build()
    session = dep.new_session(enable_pushdown=False)

    def work(env):
        result = yield from session.execute(ch_query_sql(1, TINY))
        check = yield from session.execute(
            "SELECT count(*) FROM order_line WHERE ol_o_id > 0"
        )
        return result, check

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)
    result, check = proc.value
    total_rows = check.rows[0][0]
    count_col = result.columns.index("count_order")
    assert sum(row[count_col] for row in result.rows) == total_rows
