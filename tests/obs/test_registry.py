"""MetricsRegistry: namespace rules, snapshots, diff, JSON export."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.sim.metrics import LatencyRecorder, ThroughputMeter, summarize


def test_counter_and_adder_basics():
    reg = MetricsRegistry()
    reg.incr("astore.writes")
    reg.incr("astore.writes", 4)
    reg.add("sim.device.ssd.queue_wait_s", 0.25)
    reg.add("sim.device.ssd.queue_wait_s", 0.5)
    assert reg.value("astore.writes") == 5
    assert reg.value("sim.device.ssd.queue_wait_s") == pytest.approx(0.75)
    assert "astore.writes" in reg
    assert len(reg) == 2


def test_latency_and_meter_nodes():
    reg = MetricsRegistry()
    lat = reg.latency("engine.txn.commit_wait")
    assert isinstance(lat, LatencyRecorder)
    # Get-or-create returns the same recorder.
    assert reg.latency("engine.txn.commit_wait") is lat
    lat.record(0.010)
    lat.record(0.030)
    node = reg.value("engine.txn.commit_wait")
    assert node["count"] == 2.0
    assert node["mean"] == pytest.approx(0.020)
    assert set(node) == {"count", "mean", "p50", "p95", "p99", "max"}

    meter = reg.meter("net.rpc")
    assert isinstance(meter, ThroughputMeter)
    meter.record(0.0)
    meter.record(2.0, nbytes=4 * 1024 * 1024)
    assert reg.value("net.rpc")["rate"] == pytest.approx(1.0)
    assert reg.value("net.rpc")["bandwidth_mb_s"] == pytest.approx(2.0)


def test_gauges_sample_at_snapshot_time_and_may_nest():
    reg = MetricsRegistry()
    state = {"hits": 1}
    reg.gauge("ebp.hits", lambda: state["hits"])
    reg.gauge("ebp.capacity", lambda: {"free_slots": 3, "used_slots": 5})
    state["hits"] = 9
    snap = reg.snapshot()
    assert snap["ebp"]["hits"] == 9
    assert snap["ebp"]["capacity"]["used_slots"] == 5


def test_kind_collision_rejected():
    reg = MetricsRegistry()
    reg.incr("engine.committed")
    with pytest.raises(ValueError):
        reg.latency("engine.committed")


def test_leaf_vs_subtree_collision_rejected():
    reg = MetricsRegistry()
    reg.incr("astore.server0.writes")
    # A leaf cannot shadow an existing subtree...
    with pytest.raises(ValueError):
        reg.incr("astore.server0")
    # ...nor may a subtree grow under an existing leaf.
    reg.incr("query.fragments")
    with pytest.raises(ValueError):
        reg.incr("query.fragments.merged")


def test_bad_names_rejected():
    reg = MetricsRegistry()
    for bad in ("", "a..b", ".a", "a.", "a. b"):
        with pytest.raises(ValueError):
            reg.incr(bad)


def test_unknown_name_raises_keyerror():
    reg = MetricsRegistry()
    with pytest.raises(KeyError):
        reg.value("no.such.metric")


def test_snapshot_nests_by_dots_and_flat_is_sorted():
    reg = MetricsRegistry()
    reg.incr("b.y", 2)
    reg.incr("a.x", 1)
    reg.incr("b.z.deep", 3)
    assert list(reg.flat()) == ["a.x", "b.y", "b.z.deep"]
    snap = reg.snapshot()
    assert snap == {"a": {"x": 1}, "b": {"y": 2, "z": {"deep": 3}}}


def test_diff_subtracts_recursively():
    reg = MetricsRegistry()
    reg.incr("engine.committed", 10)
    reg.add("device.wait", 1.0)
    before = reg.snapshot()
    reg.incr("engine.committed", 5)
    reg.add("device.wait", 0.5)
    reg.incr("engine.aborted", 2)
    after = reg.snapshot()
    delta = MetricsRegistry.diff(before, after)
    assert delta["engine"]["committed"] == 5
    assert delta["engine"]["aborted"] == 2
    assert delta["device"]["wait"] == pytest.approx(0.5)


def test_to_json_is_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.incr("z.last")
        reg.incr("a.first")
        reg.latency("m.lat").record(0.001)
        return reg.to_json()

    first, second = build(), build()
    assert first == second
    assert json.loads(first)["a"]["first"] == 1


def test_summarize_goes_through_registry_snapshot():
    summary = summarize([0.010, 0.020, 0.030])
    # Same schema as any registry latency node.
    reg = MetricsRegistry()
    rec = reg.latency("samples")
    for s in (0.010, 0.020, 0.030):
        rec.record(s)
    assert summary == reg.snapshot()["samples"]
    assert summary["p50"] == pytest.approx(0.020)


def test_throughput_meter_rate_zero_window():
    meter = ThroughputMeter("empty")
    assert meter.rate() == 0.0
    assert meter.bandwidth_mb_s() == 0.0
    # All samples at one instant: zero-length window, still 0.0 (not inf).
    meter.record(1.0, nbytes=100)
    meter.record(1.0, nbytes=100)
    assert meter.rate() == 0.0
    assert meter.bandwidth_mb_s() == 0.0
    # start() moved past the last record: negative window, still 0.0.
    meter.start(5.0)
    assert meter.rate() == 0.0
