"""Tests for repro.obs (metrics registry + span tracer)."""
