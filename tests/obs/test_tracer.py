"""Span tracer: virtual-time spans, Chrome export, determinism."""

import json

from repro.obs import NULL_SPAN, NULL_TRACER, Observability, Tracer, obs_of
from repro.sim.core import Environment


def test_span_records_virtual_interval():
    env = Environment()
    tracer = Tracer(env)

    def work(env):
        with tracer.span("engine.commit", tags={"txn": 7}) as span:
            yield env.timeout(0.5)
        assert span.start == 0.0
        assert span.end == 0.5
        assert span.duration == 0.5

    env.process(work(env))
    env.run(until=1.0)
    assert len(tracer.spans) == 1


def test_span_parent_linking_and_finish_idempotent():
    env = Environment()
    tracer = Tracer(env)
    parent = tracer.span("astore.write")
    child = tracer.span("rdma.verb", parent=parent)
    assert child.parent_id == parent.span_id
    child.finish()
    first_end = child.end
    child.finish()
    assert child.end == first_end
    events = tracer.export_chrome()
    assert events[1]["args"]["parent_id"] == parent.span_id


def test_export_chrome_event_shape():
    env = Environment()
    tracer = Tracer(env)

    def work(env):
        with tracer.span("device.ssd.read", tags={"bytes": 4096}):
            yield env.timeout(0.001)
        with tracer.span("net.rpc.call"):
            yield env.timeout(0.002)

    env.process(work(env))
    env.run(until=1.0)
    events = tracer.export_chrome()
    assert [e["name"] for e in events] == ["device.ssd.read", "net.rpc.call"]
    for event in events:
        assert event["ph"] == "X"
        assert event["pid"] == 0
    read = events[0]
    assert read["ts"] == 0.0
    assert read["dur"] == 1000.0  # 1 ms in microseconds
    assert read["args"]["bytes"] == 4096
    # Distinct subsystems (first dot-component) get distinct tracks.
    assert events[0]["tid"] != events[1]["tid"]
    # Round-trips as JSON.
    assert json.loads(tracer.export_chrome_json()) == events


def test_unfinished_span_closes_at_current_time():
    env = Environment()
    tracer = Tracer(env)

    def work(env):
        tracer.span("engine.hung")  # never finished
        yield env.timeout(0.25)

    env.process(work(env))
    env.run(until=0.25)
    (event,) = tracer.export_chrome()
    assert event["dur"] == 0.25 * 1e6


def test_null_tracer_is_free_and_exports_empty():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything", tags={"x": 1})
    assert span is NULL_SPAN
    assert span.set_tag("k", "v") is NULL_SPAN
    with NULL_TRACER.span("scoped"):
        pass
    assert NULL_TRACER.export_chrome() == []
    assert NULL_TRACER.export_chrome_json() == "[]"


def test_obs_of_attaches_one_shared_instance():
    env = Environment()
    obs = obs_of(env)
    assert obs_of(env) is obs
    assert obs.tracer is NULL_TRACER
    tracer = obs.enable_tracing(env)
    assert obs.tracer is tracer
    assert obs.enable_tracing(env) is tracer  # idempotent
    obs.disable_tracing()
    assert obs.tracer is NULL_TRACER


def _run_smoke(seed, trace):
    """The quickstart example's scenario: DDL, bulk insert, point + PQ reads."""
    from repro import KB
    from repro.engine import DECIMAL, INT, VARCHAR, Column, Schema
    from repro.harness.deployment import DeploymentSpec

    spec = (
        DeploymentSpec.astore_pq(seed=seed)
        .with_tracing(trace)
        .with_engine(buffer_pool_bytes=8 * 16 * KB)
    )
    dep = spec.build()
    dep.start()
    dep.engine.create_table(
        "products",
        Schema(
            [
                Column("id", INT()),
                Column("category", VARCHAR(16)),
                Column("name", VARCHAR(40)),
                Column("price", DECIMAL(2)),
                Column("description", VARCHAR(400)),
            ]
        ),
        ["id"],
    )
    session = dep.new_session(pushdown_row_threshold=50)

    def work(env):
        yield from session.execute(
            "INSERT INTO products (id, category, name, price, description) "
            "VALUES "
            + ", ".join(
                "(%d, '%s', 'product-%d', %0.2f, '%s')"
                % (i, ["tools", "toys", "books"][i % 3], i, 1.0 + i % 50,
                   "d" * 350)
                for i in range(150)
            )
        )
        yield from session.execute(
            "SELECT name, price FROM products WHERE id = 42"
        )
        yield from session.execute(
            "SELECT category, count(*) AS n, avg(price) AS avg_price "
            "FROM products WHERE price > 10 GROUP BY category ORDER BY category"
        )
        yield from session.execute(
            "UPDATE products SET price = price * 2 WHERE id = 42"
        )

    proc = dep.env.process(work(dep.env))
    dep.run_until(proc)
    return dep


def test_same_seed_runs_export_identical_bytes():
    first = _run_smoke(seed=7, trace=True)
    second = _run_smoke(seed=7, trace=True)
    payload_a = first.tracer.export_chrome_json()
    payload_b = second.tracer.export_chrome_json()
    assert len(first.tracer.spans) > 0
    assert payload_a == payload_b
    # And it is valid Chrome trace-event JSON.
    events = json.loads(payload_a)
    assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)


def test_noop_tracer_adds_no_metrics_entries():
    traced = _run_smoke(seed=7, trace=True)
    plain = _run_smoke(seed=7, trace=False)
    assert plain.tracer is NULL_TRACER
    assert plain.tracer.export_chrome_json() == "[]"
    # Tracing on/off changes the trace, never the metrics namespace.
    assert set(plain.registry.flat()) == set(traced.registry.flat())


def test_observability_defaults():
    obs = Observability()
    assert obs.tracer is NULL_TRACER
    assert len(obs.registry) == 0
