"""Hot-path behaviour of the observability layer: memoized registry
accessors and the verified zero-allocation disabled tracer path."""

import tracemalloc

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NULL_SPAN, NullTracer


def test_registry_latency_accessor_memoizes():
    registry = MetricsRegistry()
    recorder = registry.latency("a.b")
    recorder.record(1.0)
    assert registry.latency("a.b") is recorder
    assert registry.value("a.b")["count"] == 1.0


def test_registry_meter_accessor_memoizes():
    registry = MetricsRegistry()
    meter = registry.meter("io.reads")
    assert registry.meter("io.reads") is meter


def test_registry_incr_add_fast_paths_accumulate():
    registry = MetricsRegistry()
    registry.incr("c", 2)
    registry.incr("c")
    assert registry.value("c") == 3
    registry.add("d", 1.5)
    registry.add("d", 1.0)
    assert registry.value("d") == 2.5


def test_registry_fast_paths_still_validate_kind_collisions():
    registry = MetricsRegistry()
    registry.latency("a.b")
    with pytest.raises(ValueError):
        registry.incr("a.b")
    registry.incr("count")
    with pytest.raises(ValueError):
        registry.add("count", 1.0)


def test_null_tracer_span_is_shared_singleton():
    tracer = NullTracer()
    first = tracer.span("a", tags={"k": 1})
    second = tracer.span("b")
    assert first is second is NULL_SPAN
    with tracer.span("c") as span:
        assert span is NULL_SPAN
    assert span.set_tag("k", 2) is NULL_SPAN
    assert tracer.enabled is False


def test_null_tracer_span_allocates_nothing():
    tracer = NullTracer()
    spans = [tracer.span("warmup") for _ in range(10)]  # warm caches
    assert all(s is NULL_SPAN for s in spans)
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            tracer.span("hot.path")
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    # Zero bytes attributable to the tracer module across 1000 disabled
    # spans (the snapshot machinery itself allocates; filter it out).
    tracer_allocs = [
        stat for stat in after.compare_to(before, "filename")
        if stat.traceback[0].filename.endswith("tracer.py")
    ]
    assert sum(stat.size_diff for stat in tracer_allocs) == 0
