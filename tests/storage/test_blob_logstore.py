"""Tests for BlobGroup striping and LogStore latency behaviour."""

import pytest

from repro.common import KB, MB, MS
from repro.sim.core import Environment
from repro.sim.devices import SsdDevice
from repro.sim.metrics import LatencyRecorder
from repro.sim.rand import SeedSequence
from repro.storage.blob import Blob, BlobGroup
from repro.storage.logstore import LogStore


def make_group(blobs=4, io_size=8 * KB):
    env = Environment()
    seeds = SeedSequence(11)
    device = SsdDevice(env, seeds.stream("ssd"))
    group = BlobGroup(env, [device], blobs_per_group=blobs, io_size=io_size)
    return env, group


def run_until(env, gen):
    proc = env.process(gen)
    env.run_until_event(proc)
    return proc.value


def test_split_sizes_exact_multiple():
    env, group = make_group()
    assert group.split_sizes(16 * KB) == [8 * KB, 8 * KB]


def test_split_sizes_with_remainder():
    env, group = make_group()
    assert group.split_sizes(20 * KB) == [8 * KB, 8 * KB, 4 * KB]


def test_split_sizes_small_write_single_io():
    env, group = make_group()
    assert group.split_sizes(100) == [100]


def test_split_rejects_nonpositive():
    env, group = make_group()
    with pytest.raises(ValueError):
        group.split_sizes(0)


def test_append_round_robin_over_blobs():
    env, group = make_group(blobs=4)

    def do(env):
        yield from group.append(32 * KB)  # 4 stripes -> one per blob

    run_until(env, do(env))
    assert [blob.appends for blob in group.blobs] == [1, 1, 1, 1]
    assert group.physical_ios == 4
    assert group.logical_appends == 1


def test_append_round_robin_wraps():
    env, group = make_group(blobs=4)

    def do(env):
        yield from group.append(48 * KB)  # 6 stripes

    run_until(env, do(env))
    assert [blob.appends for blob in group.blobs] == [2, 2, 1, 1]


def test_group_length_tracks_appends():
    env, group = make_group()

    def do(env):
        yield from group.append(20 * KB)

    run_until(env, do(env))
    assert group.length == 20 * KB


def test_blob_capacity_enforced():
    env = Environment()
    seeds = SeedSequence(3)
    device = SsdDevice(env, seeds.stream("ssd"))
    blob = Blob(env, device, capacity=1 * KB)

    def do(env):
        yield from blob.append(2 * KB)

    from repro.common import CapacityError

    with pytest.raises(CapacityError):
        run_until(env, do(env))


def test_striped_append_is_parallel():
    """A large append over 4 blobs should take roughly one stripe's time,
    not the sum of all stripes."""
    env, group = make_group(blobs=4)

    def do(env):
        start = env.now
        yield from group.append(32 * KB)
        return env.now - start

    elapsed = run_until(env, do(env))
    # Sequential execution would be ~4x a single 8 KB write; parallel is ~1x.
    assert elapsed < 4 * 0.4 * MS


# ---------------------------------------------------------------------------
# LogStore
# ---------------------------------------------------------------------------


def make_logstore():
    env = Environment()
    seeds = SeedSequence(17)
    store = LogStore(env, seeds)
    return env, store


def test_logstore_append_replicates_to_all():
    env, store = make_logstore()

    def do(env):
        yield from store.append(4 * KB)

    run_until(env, do(env))
    assert store.appends == 1
    for server in store.servers:
        assert server.blob_group.logical_appends == 1


def test_logstore_single_write_latency_calibration():
    """Table II: single-threaded 4 KB appends average ~0.638 ms."""
    env, store = make_logstore()
    rec = LatencyRecorder()

    def do(env):
        for _ in range(300):
            latency = yield from store.append(4 * KB)
            rec.record(latency)

    run_until(env, do(env))
    assert 0.35 * MS < rec.mean < 1.1 * MS


def test_logstore_latency_has_spiky_tail():
    env, store = make_logstore()
    rec = LatencyRecorder()

    def do(env):
        for _ in range(400):
            latency = yield from store.append(4 * KB)
            rec.record(latency)

    run_until(env, do(env))
    assert rec.p99 > 2 * rec.p50  # scheduling + SSD spikes create the tail


def test_logstore_submit_path_queues_under_load():
    """Bottleneck (2): I/O scheduling contention under concurrency."""
    env, store = make_logstore()
    rec = LatencyRecorder()

    def client(env):
        for _ in range(40):
            latency = yield from store.append(4 * KB)
            rec.record(latency)

    procs = [env.process(client(env)) for _ in range(32)]
    from repro.sim.core import AllOf

    env.run_until_event(AllOf(env, procs))
    env_single, store_single = make_logstore()
    rec_single = LatencyRecorder()

    def single(env):
        for _ in range(40):
            latency = yield from store_single.append(4 * KB)
            rec_single.record(latency)

    env_single.run_until_event(env_single.process(single(env_single)))
    assert rec.mean > rec_single.mean  # contention adds latency
