"""Property test: PageStore replicas converge despite arbitrary outages.

Random partition schedules knock replicas out during shipping; back-links
detect the gaps and gossip heals them.  Whatever the schedule, every
replica that is up at the end must reach the same page contents.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import MS, PageId
from repro.engine.page import PageOp
from repro.engine.wal import RedoRecord
from repro.sim.core import Environment
from repro.sim.rand import SeedSequence
from repro.storage.pagestore import PageStoreService


@given(
    outages=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # replica index
            st.integers(min_value=0, max_value=19),  # down from batch n
            st.integers(min_value=1, max_value=6),  # for k batches
        ),
        max_size=4,
    ),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=15, deadline=None)
def test_replicas_converge_after_arbitrary_outages(outages, seed):
    env = Environment()
    service = PageStoreService(env, SeedSequence(seed), num_servers=3,
                               num_segments=1)
    page_id = PageId(1, 1)
    replicas = service.replicas_of(0)
    batches = 20

    def down_set(batch_no):
        down = set()
        for replica_index, start, length in outages:
            if start <= batch_no < start + length:
                down.add(replica_index)
        # Quorum needs 2 of 3 alive; cap outages at one at a time.
        return set(list(down)[:1])

    def driver(env):
        lsn = 0
        for batch_no in range(batches):
            down = down_set(batch_no)
            for index, server in enumerate(replicas):
                server.alive = index not in down
            lsn += 100
            op = PageOp("insert", slot=batch_no, row=b"b%03d" % batch_no)
            record = RedoRecord(lsn=lsn, txn_id=1, page_id=page_id, op=op)
            yield from service.ship_records([record])
            yield env.timeout(1 * MS)
        # Heal everything, then ship one more record: back-links detect
        # *interior* gaps only, so a replica that missed the tail of the
        # stream learns about it from the next record's back-link - the
        # paper's exact mechanism (a silent tail gap heals on the next
        # write, not spontaneously).
        for server in replicas:
            server.alive = True
        lsn += 100
        sentinel = RedoRecord(
            lsn=lsn, txn_id=1, page_id=page_id,
            op=PageOp("insert", slot=batches, row=b"sentinel"),
        )
        yield from service.ship_records([sentinel])
        yield env.timeout(2 * MS)
        for server in replicas:
            yield from service._gossip_fill(server, 0)
            yield from server.catch_up(0)
        return lsn

    proc = env.process(driver(env))
    env.run_until_event(proc)

    pages = [server.replica(0).pages.get(page_id) for server in replicas]
    assert all(page is not None for page in pages)
    reference = pages[0]
    for page in pages[1:]:
        assert page.same_content(reference)
    assert reference.row_count == batches + 1  # + the sentinel
