"""Tests for PageStore: quorum shipping, replay, back-links, gossip."""

import pytest

from repro.common import MS, PageId, StorageError
from repro.engine.page import PageOp
from repro.engine.wal import RedoRecord
from repro.sim.core import Environment
from repro.sim.rand import SeedSequence
from repro.storage.pagestore import PageStoreService


def make_service(**kwargs):
    env = Environment()
    seeds = SeedSequence(31)
    defaults = dict(num_servers=3, num_segments=4, replication=3, quorum=2)
    defaults.update(kwargs)
    service = PageStoreService(env, seeds, **defaults)
    return env, service


def run_until(env, gen):
    proc = env.process(gen)
    env.run_until_event(proc)
    return proc.value


def record(lsn, page, kind="insert", slot=0, row=b"row", txn=1):
    op = PageOp(kind, slot=slot, row=row if kind in ("insert", "update") else None)
    return RedoRecord(lsn=lsn, txn_id=txn, page_id=page, op=op)


def test_ship_then_read_roundtrip():
    env, service = make_service()
    page_id = PageId(1, 5)

    def do(env):
        yield from service.ship_records([record(10, page_id, row=b"hello")])
        page = yield from service.read_page(page_id, min_lsn=10)
        return page

    page = run_until(env, do(env))
    assert page.get(0) == b"hello"
    assert page.page_lsn == 10


def test_read_returns_clone_not_shared_state():
    env, service = make_service()
    page_id = PageId(1, 5)

    def do(env):
        yield from service.ship_records([record(10, page_id, row=b"v1")])
        first = yield from service.read_page(page_id, min_lsn=10)
        yield from service.ship_records(
            [record(20, page_id, kind="update", slot=0, row=b"v2")]
        )
        second = yield from service.read_page(page_id, min_lsn=20)
        return first, second

    first, second = run_until(env, do(env))
    assert first.get(0) == b"v1"
    assert second.get(0) == b"v2"


def test_replicas_converge():
    env, service = make_service()
    page_id = PageId(1, 5)

    def do(env):
        yield from service.ship_records([record(10, page_id, row=b"x")])
        yield env.timeout(10 * MS)  # let slow replicas finish
        segment = service.segment_of(page_id)
        for server in service.replicas_of(segment):
            yield from server.catch_up(segment)
        return segment

    segment = run_until(env, do(env))
    pages = [
        server.replica(segment).pages.get(page_id)
        for server in service.replicas_of(segment)
    ]
    assert all(page is not None and page.get(0) == b"x" for page in pages)


def test_quorum_tolerates_one_dead_replica():
    env, service = make_service()
    page_id = PageId(1, 5)
    segment = service.segment_of(page_id)
    service.replicas_of(segment)[0].alive = False

    def do(env):
        yield from service.ship_records([record(10, page_id, row=b"ok")])
        page = yield from service.read_page(page_id, min_lsn=10)
        return page

    page = run_until(env, do(env))
    assert page.get(0) == b"ok"


def test_quorum_fails_with_two_dead_replicas():
    env, service = make_service()
    page_id = PageId(1, 5)
    segment = service.segment_of(page_id)
    service.replicas_of(segment)[0].alive = False
    service.replicas_of(segment)[1].alive = False

    def do(env):
        yield from service.ship_records([record(10, page_id, row=b"?")])

    with pytest.raises(StorageError, match="quorum"):
        run_until(env, do(env))


def test_back_links_are_stamped_per_segment_chain():
    env, service = make_service(num_segments=1)
    p1, p2 = PageId(1, 1), PageId(1, 2)
    r1, r2, r3 = (
        record(10, p1, row=b"a"),
        record(20, p2, row=b"b"),
        record(30, p1, kind="update", slot=0, row=b"c"),
    )

    def do(env):
        yield from service.ship_records([r1, r2, r3])

    run_until(env, do(env))
    assert r1.back_link == -1
    assert r2.back_link == 10
    assert r3.back_link == 20


def test_gap_detection_and_gossip_fill():
    """A replica that missed a record detects the gap via back-links and
    fills it from a peer before serving reads."""
    env, service = make_service(num_segments=1)
    page_id = PageId(1, 1)
    segment = service.segment_of(page_id)
    replicas = service.replicas_of(segment)

    def do(env):
        yield from service.ship_records([record(10, page_id, row=b"first")])
        yield env.timeout(5 * MS)
        # Partition replica 0, ship another record, then heal.
        replicas[0].alive = False
        yield from service.ship_records(
            [record(20, page_id, kind="update", slot=0, row=b"second")]
        )
        yield env.timeout(5 * MS)
        replicas[0].alive = True
        # Ship a third record: replica 0 receives it but sees a gap.
        yield from service.ship_records(
            [record(30, page_id, kind="update", slot=0, row=b"third")]
        )
        yield env.timeout(5 * MS)
        # Read from replica 0 (the preferred primary): gossip must fill.
        page = yield from service.read_page(page_id, min_lsn=30)
        return page

    page = run_until(env, do(env))
    assert page.get(0) == b"third"
    assert service.gossip_rounds >= 1
    replica0 = replicas[0].replica(segment)
    assert replica0.missing_range() is None  # gap healed


def test_duplicate_delivery_is_idempotent():
    env, service = make_service(num_segments=1)
    page_id = PageId(1, 1)
    segment = service.segment_of(page_id)
    server = service.replicas_of(segment)[0]
    rec = record(10, page_id, row=b"once")

    def do(env):
        yield from server.receive_records(segment, [rec])
        yield from server.receive_records(segment, [rec])  # gossip replay
        yield from server.catch_up(segment)

    run_until(env, do(env))
    page = server.replica(segment).pages[page_id]
    assert page.row_count == 1


def test_read_page_latency_around_one_millisecond():
    """Paper Section V-C: reading from remote PageStore costs ~1 ms."""
    env, service = make_service()
    page_id = PageId(1, 5)

    def do(env):
        yield from service.ship_records([record(10, page_id, row=b"timed")])
        start = env.now
        yield from service.read_page(page_id, min_lsn=10)
        return env.now - start

    latency = run_until(env, do(env))
    assert 0.3 * MS < latency < 3 * MS


def test_unknown_page_raises():
    env, service = make_service()

    def do(env):
        yield from service.read_page(PageId(9, 9), min_lsn=0)

    with pytest.raises(StorageError):
        run_until(env, do(env))


def test_apply_daemon_replays_in_background():
    env, service = make_service()
    service.start_apply_daemon(interval=1 * MS)
    page_id = PageId(1, 5)
    segment = service.segment_of(page_id)

    def do(env):
        yield from service.ship_records([record(10, page_id, row=b"bg")])
        yield env.timeout(20 * MS)
        return service.replicas_of(segment)[0].replica(segment).applied_lsn

    applied = run_until(env, do(env))
    assert applied == 10


def test_segment_mapping_is_stable_and_in_range():
    env, service = make_service(num_segments=8)
    for space in range(3):
        for page in range(50):
            pid = PageId(space, page)
            seg = service.segment_of(pid)
            assert 0 <= seg < 8
            assert service.segment_of(pid) == seg


def test_replication_validation():
    with pytest.raises(ValueError):
        make_service(num_servers=2, replication=3)
    with pytest.raises(ValueError):
        make_service(quorum=5)
