"""Tests for AStore client + cluster manager: routing, leases, replication,
failure handling, and the one-sided consistency protocol."""

import pytest

from repro.common import (
    MB,
    US,
    LeaseExpiredError,
    SegmentFrozenError,
    SegmentNotFoundError,
    StorageError,
)
from repro.sim.core import Environment
from repro.sim.rand import SeedSequence
from repro.astore.cluster import AStoreCluster


def make_cluster(num_servers=3, **kwargs):
    env = Environment()
    seeds = SeedSequence(7)
    cluster = AStoreCluster(env, seeds, num_servers=num_servers, **kwargs)
    return env, cluster


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_create_places_replicas_on_distinct_servers():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        return (yield from client.create(1 * MB, replication=3))

    segment_id = run(env, do(env))
    route = cluster.cm.lookup_route(segment_id)
    assert len(set(route.replicas)) == 3
    for server_id in route.replicas:
        assert segment_id in cluster.servers[server_id].segments


def test_create_is_control_plane_slow():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        start = env.now
        yield from client.create(1 * MB, replication=3)
        return env.now - start

    elapsed = run(env, do(env))
    # "a few milliseconds" per the paper: RPCs to CM + 3 servers.
    assert elapsed > 300 * US


def test_write_replicates_to_all_and_read_roundtrips():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        offset, length = yield from client.write(seg, 4096, "redo-batch-1")
        value = yield from client.read(seg, offset, length)
        return seg, offset, value

    seg, offset, value = run(env, do(env))
    assert offset == 0
    assert value == "redo-batch-1"
    for server in cluster.servers.values():
        if seg in server.segments:
            assert server.segments[seg].write_offset == 4096


def test_write_latency_is_data_plane_fast():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        start = env.now
        yield from client.write(seg, 512, "r")
        return env.now - start

    latency = run(env, do(env))
    assert latency < 100 * US  # microseconds, not milliseconds


def test_replica_failure_freezes_segment():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 512, "a")
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        try:
            yield from client.write(seg, 512, "b")
        except SegmentFrozenError:
            return seg, "frozen"
        return seg, "wrote"

    seg, outcome = run(env, do(env))
    assert outcome == "frozen"
    assert client.open_segments[seg].frozen
    # Effective length is the last acknowledged write.
    assert client.open_segments[seg].written == 512


def test_frozen_segment_rejects_further_writes():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        try:
            yield from client.write(seg, 512, "x")
        except SegmentFrozenError:
            pass
        yield from client.write(seg, 512, "y")

    with pytest.raises(SegmentFrozenError):
        run(env, do(env))


def test_read_fails_over_to_surviving_replica():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 256, "durable")
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        return (yield from client.read(seg, 0, 256))

    assert run(env, do(env)) == "durable"


def test_single_replica_ebp_segment_loss_is_total():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=1)
        yield from client.write(seg, 256, "cached-page")
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        yield from client.read(seg, 0, 256)

    with pytest.raises(StorageError):
        run(env, do(env))


def test_lease_expiry_blocks_writes():
    env, cluster = make_cluster(lease_duration=2.0)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield env.timeout(5.0)  # client "hangs"; lease expires
        yield from client.write(seg, 128, "zombie write")

    with pytest.raises(LeaseExpiredError):
        run(env, do(env))


def test_lease_renewal_keeps_client_alive():
    env, cluster = make_cluster(lease_duration=2.0)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        for _ in range(5):
            yield env.timeout(1.0)
            yield from client.renew_lease()
        yield from client.write(seg, 128, "alive")
        return "ok"

    assert run(env, do(env)) == "ok"


def test_ownership_transfer_story():
    """Section IV-C: client A dies, B takes over the segment, A returns and
    must not be able to write."""
    env, cluster = make_cluster(lease_duration=2.0)
    client_a = cluster.new_client("a")
    client_b = cluster.new_client("b")

    def do(env):
        seg = yield from client_a.create(1 * MB, replication=3)
        yield from client_a.write(seg, 128, "a1")
        # A goes silent; its lease expires.
        yield env.timeout(5.0)
        yield from client_b.renew_lease()
        cluster.cm.transfer_ownership(seg, "b")
        # A returns and tries to write without renewing.
        try:
            yield from client_a.write(seg, 128, "a2-stale")
        except LeaseExpiredError:
            return "blocked"
        return "inconsistency"

    assert run(env, do(env)) == "blocked"


def test_heartbeat_detects_failure_and_rebuilds():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 512, "replicated")
        route_before = cluster.cm.lookup_route(seg)
        victim = route_before.replicas[0]
        cluster.servers[victim].crash()
        # Simulate heartbeat rounds past the failure timeout.
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        route_after = cluster.cm.lookup_route(seg)
        return victim, route_before, route_after

    victim, before, after = run(env, do(env))
    assert victim not in after.replicas
    assert len(after.replicas) == 3
    assert after.epoch > before.epoch
    new_replica = (set(after.replicas) - set(before.replicas)).pop()
    segment = cluster.servers[new_replica].segments[before.segment_id]
    assert segment.write_offset == 512  # contents copied during rebuild
    assert cluster.cm.rebuilds == 1


def test_route_refresh_picks_up_epoch_change():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 128, "x")
        victim = cluster.cm.lookup_route(seg).replicas[0]
        cluster.servers[victim].crash()
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        old_epoch = client.open_segments[seg].route.epoch
        yield from client.refresh_routes()
        return old_epoch, client.open_segments[seg].route.epoch

    old_epoch, new_epoch = run(env, do(env))
    assert new_epoch > old_epoch


def test_returned_server_segments_marked_stale():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 128, "x")
        victim = cluster.cm.lookup_route(seg).replicas[0]
        cluster.servers[victim].crash()
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        cluster.servers[victim].restart()
        cluster.cm.heartbeat_sweep()
        return victim, seg

    victim, seg = run(env, do(env))
    stale_copy = cluster.servers[victim].segments.get(seg)
    assert stale_copy is not None and stale_copy.stale


def test_refresh_faster_than_cleanup_invariant_enforced():
    env = Environment()
    seeds = SeedSequence(5)
    with pytest.raises(ValueError):
        AStoreCluster(
            env, seeds, num_servers=3, cleanup_delay=2.0, route_refresh_period=1.0
        ).new_client("c1")


def test_delete_segment_releases_space():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 128, "gone soon")
        yield from client.delete(seg)
        return seg

    seg = run(env, do(env))
    with pytest.raises(SegmentNotFoundError):
        cluster.cm.lookup_route(seg)
    for server in cluster.servers.values():
        assert seg not in server.segments


def test_delete_by_non_owner_rejected():
    env, cluster = make_cluster()
    client_a = cluster.new_client("a")
    client_b = cluster.new_client("b")

    def do(env):
        seg = yield from client_a.create(1 * MB, replication=3)
        yield from client_b.delete(seg)

    with pytest.raises(StorageError):
        run(env, do(env))


def test_open_existing_segment_recovers_written_length():
    env, cluster = make_cluster()
    client_a = cluster.new_client("a")
    client_b = cluster.new_client("b")

    def do(env):
        seg = yield from client_a.create(1 * MB, replication=3)
        yield from client_a.write(seg, 100, "one")
        yield from client_a.write(seg, 200, "two")
        meta = yield from client_b.open(seg)
        return meta.written

    assert run(env, do(env)) == 300


def test_maintenance_daemons_keep_lease_alive():
    env, cluster = make_cluster(lease_duration=3.0)
    client = cluster.new_client("c1")
    cluster.start_maintenance()

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield env.timeout(20.0)  # many lease durations
        yield from client.write(seg, 64, "still the owner")
        return "ok"

    proc = env.process(do(env))
    env.run_until_event(proc)
    assert proc.value == "ok"


# ---------------------------------------------------------------------------
# Fault-tolerance layer: epoch fencing, lease boundary/re-grant, CM outage,
# partitions, and the automatic failure detector.
# ---------------------------------------------------------------------------


def test_rebuild_bumps_epoch_exactly_once_and_fences_survivors():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 128, "x")
        route_before = cluster.cm.lookup_route(seg)
        cluster.servers[route_before.replicas[0]].crash()
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        return seg, route_before.epoch

    seg, old_epoch = run(env, do(env))
    route = cluster.cm.lookup_route(seg)
    # Exactly ONE bump per rebuild (a double bump would make the stored
    # route unequal to the fenced replicas and fence the owner forever).
    assert route.epoch == old_epoch + 1
    # Every surviving replica's local copy carries the new epoch.
    for server_id in route.replicas:
        assert cluster.servers[server_id].segments[seg].epoch == route.epoch


def test_stale_epoch_write_is_fenced_then_client_recovers():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 128, "pre")
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        # The client still caches the pre-rebuild route (old epoch).  A
        # direct one-sided write with that epoch must be fenced...
        from repro.common import StaleRouteError

        new_route = cluster.cm.lookup_route(seg)
        survivor = cluster.servers[new_route.replicas[0]]
        old_epoch = client.open_segments[seg].route.epoch
        assert old_epoch < new_route.epoch
        try:
            yield from survivor.one_sided_write(seg, 128, 64, "zombie",
                                                epoch=old_epoch)
            fenced = False
        except StaleRouteError:
            fenced = True
        # ...while the SDK write path refreshes routes and retries
        # transparently under the retry policy.  Restart the victim so the
        # stale cached route is all-reachable again: the fan-out then hits
        # the survivors' epoch fence (not the reachability freeze).
        cluster.servers[route.replicas[0]].restart()
        cluster.cm.heartbeat_sweep()
        yield from client.write(seg, 64, "post-rebuild")
        return fenced

    assert run(env, do(env)) is True
    assert client.retries >= 1


def test_lease_renewal_at_exact_expiry_is_rejected():
    env, cluster = make_cluster(lease_duration=2.0)
    cluster.new_client("c1")

    def do(env):
        cluster.cm.grant_lease("c1")
        yield env.timeout(2.0)  # exactly expires_at
        try:
            cluster.cm.renew_lease("c1")
        except LeaseExpiredError:
            return "rejected"
        return "renewed"

    assert run(env, do(env)) == "rejected"


def test_client_renew_lease_regrants_after_expiry():
    env, cluster = make_cluster(lease_duration=2.0)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield env.timeout(5.0)  # lease long gone
        yield from client.renew_lease()  # re-grants instead of failing
        yield from client.write(seg, 64, "re-admitted")
        return "ok"

    assert run(env, do(env)) == "ok"
    assert client.lease_regrants == 1


def test_cm_outage_blocks_control_plane_not_data_plane():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        cluster.cm.crash()
        # One-sided data plane keeps flowing on the cached lease+route.
        yield from client.write(seg, 128, "during-outage")
        value = yield from client.read(seg, 0, 128)
        # Control RPCs fail (typed, after bounded retries - no hang).
        try:
            yield from client.create(1 * MB, replication=3)
            created = True
        except StorageError:
            created = False
        cluster.cm.restart()
        seg2 = yield from client.create(1 * MB, replication=3)
        return value, created, seg2

    value, created, seg2 = run(env, do(env))
    assert value == "during-outage"
    assert created is False
    assert seg2 is not None


def test_partition_from_cm_declares_failure_and_heals():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        victim = cluster.cm.lookup_route(seg).replicas[0]
        cluster.servers[victim].partition("cm")
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        partitioned_failed = victim in cluster.cm.failed_servers
        cluster.servers[victim].heal("cm")
        yield env.timeout(1.0)
        cluster.cm.heartbeat_sweep()
        return victim, partitioned_failed

    victim, partitioned_failed = run(env, do(env))
    assert partitioned_failed is True
    assert victim not in cluster.cm.failed_servers
    assert cluster.cm.rebuilds >= 1


def test_failure_detector_notices_crash_without_manual_sweeps():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")
    cluster.start_maintenance()

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        victim = cluster.cm.lookup_route(seg).replicas[0]
        cluster.servers[victim].crash()
        yield env.timeout(6.0)  # no manual heartbeat_sweep() anywhere
        detected = victim in cluster.cm.failed_servers
        cluster.servers[victim].restart()
        yield env.timeout(3.0)
        return victim, detected

    proc = env.process(do(env))
    env.run_until_event(proc)
    victim, detected = proc.value
    assert detected is True
    assert victim not in cluster.cm.failed_servers
    assert cluster.detector.failures_detected >= 1
    assert cluster.detector.recoveries >= 1
    assert cluster.detector.sweeps > 0


def test_detector_survives_cm_outage_window():
    env, cluster = make_cluster(lease_duration=3.0)
    client = cluster.new_client("c1")
    cluster.start_maintenance()

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        cluster.cm.crash()
        yield env.timeout(2.0)  # renewals fail quietly during the outage
        cluster.cm.restart()
        yield env.timeout(10.0)  # several lease durations
        yield from client.write(seg, 64, "still the owner")
        return "ok"

    proc = env.process(do(env))
    env.run_until_event(proc)
    assert proc.value == "ok"
