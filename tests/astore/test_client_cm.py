"""Tests for AStore client + cluster manager: routing, leases, replication,
failure handling, and the one-sided consistency protocol."""

import pytest

from repro.common import (
    MB,
    US,
    LeaseExpiredError,
    SegmentFrozenError,
    SegmentNotFoundError,
    StorageError,
)
from repro.sim.core import Environment
from repro.sim.rand import SeedSequence
from repro.astore.cluster import AStoreCluster


def make_cluster(num_servers=3, **kwargs):
    env = Environment()
    seeds = SeedSequence(7)
    cluster = AStoreCluster(env, seeds, num_servers=num_servers, **kwargs)
    return env, cluster


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_create_places_replicas_on_distinct_servers():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        return (yield from client.create(1 * MB, replication=3))

    segment_id = run(env, do(env))
    route = cluster.cm.lookup_route(segment_id)
    assert len(set(route.replicas)) == 3
    for server_id in route.replicas:
        assert segment_id in cluster.servers[server_id].segments


def test_create_is_control_plane_slow():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        start = env.now
        yield from client.create(1 * MB, replication=3)
        return env.now - start

    elapsed = run(env, do(env))
    # "a few milliseconds" per the paper: RPCs to CM + 3 servers.
    assert elapsed > 300 * US


def test_write_replicates_to_all_and_read_roundtrips():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        offset, length = yield from client.write(seg, 4096, "redo-batch-1")
        value = yield from client.read(seg, offset, length)
        return seg, offset, value

    seg, offset, value = run(env, do(env))
    assert offset == 0
    assert value == "redo-batch-1"
    for server in cluster.servers.values():
        if seg in server.segments:
            assert server.segments[seg].write_offset == 4096


def test_write_latency_is_data_plane_fast():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        start = env.now
        yield from client.write(seg, 512, "r")
        return env.now - start

    latency = run(env, do(env))
    assert latency < 100 * US  # microseconds, not milliseconds


def test_replica_failure_freezes_segment():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 512, "a")
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        try:
            yield from client.write(seg, 512, "b")
        except SegmentFrozenError:
            return seg, "frozen"
        return seg, "wrote"

    seg, outcome = run(env, do(env))
    assert outcome == "frozen"
    assert client.open_segments[seg].frozen
    # Effective length is the last acknowledged write.
    assert client.open_segments[seg].written == 512


def test_frozen_segment_rejects_further_writes():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        try:
            yield from client.write(seg, 512, "x")
        except SegmentFrozenError:
            pass
        yield from client.write(seg, 512, "y")

    with pytest.raises(SegmentFrozenError):
        run(env, do(env))


def test_read_fails_over_to_surviving_replica():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 256, "durable")
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        return (yield from client.read(seg, 0, 256))

    assert run(env, do(env)) == "durable"


def test_single_replica_ebp_segment_loss_is_total():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=1)
        yield from client.write(seg, 256, "cached-page")
        route = cluster.cm.lookup_route(seg)
        cluster.servers[route.replicas[0]].crash()
        yield from client.read(seg, 0, 256)

    with pytest.raises(StorageError):
        run(env, do(env))


def test_lease_expiry_blocks_writes():
    env, cluster = make_cluster(lease_duration=2.0)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield env.timeout(5.0)  # client "hangs"; lease expires
        yield from client.write(seg, 128, "zombie write")

    with pytest.raises(LeaseExpiredError):
        run(env, do(env))


def test_lease_renewal_keeps_client_alive():
    env, cluster = make_cluster(lease_duration=2.0)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        for _ in range(5):
            yield env.timeout(1.0)
            yield from client.renew_lease()
        yield from client.write(seg, 128, "alive")
        return "ok"

    assert run(env, do(env)) == "ok"


def test_ownership_transfer_story():
    """Section IV-C: client A dies, B takes over the segment, A returns and
    must not be able to write."""
    env, cluster = make_cluster(lease_duration=2.0)
    client_a = cluster.new_client("a")
    client_b = cluster.new_client("b")

    def do(env):
        seg = yield from client_a.create(1 * MB, replication=3)
        yield from client_a.write(seg, 128, "a1")
        # A goes silent; its lease expires.
        yield env.timeout(5.0)
        yield from client_b.renew_lease()
        cluster.cm.transfer_ownership(seg, "b")
        # A returns and tries to write without renewing.
        try:
            yield from client_a.write(seg, 128, "a2-stale")
        except LeaseExpiredError:
            return "blocked"
        return "inconsistency"

    assert run(env, do(env)) == "blocked"


def test_heartbeat_detects_failure_and_rebuilds():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 512, "replicated")
        route_before = cluster.cm.lookup_route(seg)
        victim = route_before.replicas[0]
        cluster.servers[victim].crash()
        # Simulate heartbeat rounds past the failure timeout.
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        route_after = cluster.cm.lookup_route(seg)
        return victim, route_before, route_after

    victim, before, after = run(env, do(env))
    assert victim not in after.replicas
    assert len(after.replicas) == 3
    assert after.epoch > before.epoch
    new_replica = (set(after.replicas) - set(before.replicas)).pop()
    segment = cluster.servers[new_replica].segments[before.segment_id]
    assert segment.write_offset == 512  # contents copied during rebuild
    assert cluster.cm.rebuilds == 1


def test_route_refresh_picks_up_epoch_change():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 128, "x")
        victim = cluster.cm.lookup_route(seg).replicas[0]
        cluster.servers[victim].crash()
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        old_epoch = client.open_segments[seg].route.epoch
        yield from client.refresh_routes()
        return old_epoch, client.open_segments[seg].route.epoch

    old_epoch, new_epoch = run(env, do(env))
    assert new_epoch > old_epoch


def test_returned_server_segments_marked_stale():
    env, cluster = make_cluster(num_servers=4)
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 128, "x")
        victim = cluster.cm.lookup_route(seg).replicas[0]
        cluster.servers[victim].crash()
        for _ in range(6):
            yield env.timeout(1.0)
            cluster.cm.heartbeat_sweep()
        cluster.servers[victim].restart()
        cluster.cm.heartbeat_sweep()
        return victim, seg

    victim, seg = run(env, do(env))
    stale_copy = cluster.servers[victim].segments.get(seg)
    assert stale_copy is not None and stale_copy.stale


def test_refresh_faster_than_cleanup_invariant_enforced():
    env = Environment()
    seeds = SeedSequence(5)
    with pytest.raises(ValueError):
        AStoreCluster(
            env, seeds, num_servers=3, cleanup_delay=2.0, route_refresh_period=1.0
        ).new_client("c1")


def test_delete_segment_releases_space():
    env, cluster = make_cluster()
    client = cluster.new_client("c1")

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield from client.write(seg, 128, "gone soon")
        yield from client.delete(seg)
        return seg

    seg = run(env, do(env))
    with pytest.raises(SegmentNotFoundError):
        cluster.cm.lookup_route(seg)
    for server in cluster.servers.values():
        assert seg not in server.segments


def test_delete_by_non_owner_rejected():
    env, cluster = make_cluster()
    client_a = cluster.new_client("a")
    client_b = cluster.new_client("b")

    def do(env):
        seg = yield from client_a.create(1 * MB, replication=3)
        yield from client_b.delete(seg)

    with pytest.raises(StorageError):
        run(env, do(env))


def test_open_existing_segment_recovers_written_length():
    env, cluster = make_cluster()
    client_a = cluster.new_client("a")
    client_b = cluster.new_client("b")

    def do(env):
        seg = yield from client_a.create(1 * MB, replication=3)
        yield from client_a.write(seg, 100, "one")
        yield from client_a.write(seg, 200, "two")
        meta = yield from client_b.open(seg)
        return meta.written

    assert run(env, do(env)) == 300


def test_maintenance_daemons_keep_lease_alive():
    env, cluster = make_cluster(lease_duration=3.0)
    client = cluster.new_client("c1")
    cluster.start_maintenance()

    def do(env):
        seg = yield from client.create(1 * MB, replication=3)
        yield env.timeout(20.0)  # many lease durations
        yield from client.write(seg, 64, "still the owner")
        return "ok"

    proc = env.process(do(env))
    env.run_until_event(proc)
    assert proc.value == "ok"
