"""Unit tests for RetryPolicy and the with_timeout kernel helper."""

import pytest

from repro.common import DeadlineExceededError, RetryPolicy, StorageError
from repro.sim.core import Environment, with_timeout
from repro.sim.rand import SeedSequence


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(initial_backoff=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(initial_backoff=0.2, max_backoff=0.1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(op_timeout=0.0)
    RetryPolicy(op_timeout=None)  # None disables per-attempt deadlines


def test_backoff_grows_and_is_bounded():
    policy = RetryPolicy(
        initial_backoff=1e-3, max_backoff=8e-3, multiplier=2.0, jitter=0.0
    )
    rng = SeedSequence(3).stream("backoff")
    delays = [policy.backoff(attempt, rng) for attempt in range(6)]
    assert delays[:4] == [1e-3, 2e-3, 4e-3, 8e-3]
    assert delays[4] == delays[5] == 8e-3  # capped


def test_backoff_jitter_is_bounded_and_deterministic():
    policy = RetryPolicy(initial_backoff=1e-3, jitter=0.2)
    a = [policy.backoff(i, SeedSequence(9).stream("j")) for i in range(20)]
    b = [policy.backoff(i, SeedSequence(9).stream("j")) for i in range(20)]
    assert a == b  # same seed stream, same jitter
    for attempt, delay in enumerate(a):
        base = min(1e-3 * 2.0 ** attempt, policy.max_backoff)
        assert base * 0.8 <= delay <= base * 1.2


# ---------------------------------------------------------------------------
# with_timeout
# ---------------------------------------------------------------------------


def _drive(env, gen):
    proc = env.process(gen)
    env.run_until_event(proc)
    return proc.value


def test_with_timeout_returns_value_when_fast_enough():
    env = Environment()

    def slowish(env):
        yield env.timeout(0.1)
        return "done"

    def outer(env):
        return (yield from with_timeout(env, slowish(env), 1.0))

    assert _drive(env, outer(env)) == "done"


def test_with_timeout_raises_typed_error_on_deadline():
    env = Environment()

    def hang(env):
        yield env.timeout(60.0)

    def outer(env):
        try:
            yield from with_timeout(env, hang(env), 0.05, what="hang test")
        except DeadlineExceededError as exc:
            return str(exc)
        return None

    message = _drive(env, outer(env))
    assert "hang test" in message
    assert env.now == pytest.approx(0.05)  # no waiting out the slow path


def test_with_timeout_propagates_inner_failure():
    env = Environment()

    def boom(env):
        yield env.timeout(0.01)
        raise StorageError("inner failure")

    def outer(env):
        try:
            yield from with_timeout(env, boom(env), 1.0)
        except StorageError as exc:
            return str(exc)
        return None

    assert _drive(env, outer(env)) == "inner failure"


def test_with_timeout_none_disables_deadline():
    env = Environment()

    def slow(env):
        yield env.timeout(5.0)
        return 42

    def outer(env):
        return (yield from with_timeout(env, slow(env), None))

    assert _drive(env, outer(env)) == 42
    assert env.now == pytest.approx(5.0)


def test_with_timeout_same_tick_failure_does_not_crash_kernel():
    # A process that fails in the exact tick the deadline fires used to
    # leave an un-defused failed event behind, crashing env.step() later.
    env = Environment()

    def fail_at(env, when):
        yield env.timeout(when)
        raise StorageError("same-tick loser")

    def outer(env):
        try:
            yield from with_timeout(env, fail_at(env, 0.05), 0.05)
        except (DeadlineExceededError, StorageError):
            pass
        yield env.timeout(1.0)  # keep stepping past the loser's failure
        return "survived"

    assert _drive(env, outer(env)) == "survived"
