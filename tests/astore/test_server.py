"""Tests for the AStore server: allocator, one-sided I/O, stale cleanup."""

import pytest

from repro.common import (
    MB,
    US,
    CapacityError,
    SegmentNotFoundError,
    StaleRouteError,
    StorageError,
)
from repro.sim.core import Environment
from repro.sim.rand import SeedSequence
from repro.astore.server import AStoreServer, SegmentBitmap


def make_server(**kwargs):
    env = Environment()
    seeds = SeedSequence(99)
    defaults = dict(pmem_capacity=16 * MB, segment_slot_size=1 * MB)
    defaults.update(kwargs)
    server = AStoreServer(env, seeds.stream("s0"), "s0", **defaults)
    return env, server


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


# ---------------------------------------------------------------------------
# Bitmap allocator
# ---------------------------------------------------------------------------


def test_bitmap_allocates_first_free():
    bm = SegmentBitmap(4)
    assert bm.allocate() == 0
    assert bm.allocate() == 1
    bm.release(0)
    assert bm.allocate() == 0
    assert bm.used == 2


def test_bitmap_full_raises():
    bm = SegmentBitmap(2)
    bm.allocate()
    bm.allocate()
    with pytest.raises(CapacityError):
        bm.allocate()


def test_bitmap_double_release_rejected():
    bm = SegmentBitmap(2)
    slot = bm.allocate()
    bm.release(slot)
    with pytest.raises(ValueError):
        bm.release(slot)


def test_bitmap_release_out_of_range():
    bm = SegmentBitmap(2)
    with pytest.raises(ValueError):
        bm.release(5)


def test_bitmap_invalid_size():
    with pytest.raises(ValueError):
        SegmentBitmap(0)


# ---------------------------------------------------------------------------
# Segment allocation
# ---------------------------------------------------------------------------


def test_allocate_and_release_segment():
    env, server = make_server()
    server.allocate_segment(7, 1 * MB, epoch=1)
    assert 7 in server.segments
    assert server.bitmap.used == 1
    server.release_segment(7)
    assert 7 not in server.segments
    assert server.bitmap.used == 0


def test_allocate_oversized_segment_rejected():
    env, server = make_server()
    with pytest.raises(CapacityError):
        server.allocate_segment(1, 2 * MB, epoch=1)


def test_allocate_duplicate_rejected():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)
    with pytest.raises(StorageError):
        server.allocate_segment(1, 1 * MB, epoch=1)


def test_release_unknown_segment():
    env, server = make_server()
    with pytest.raises(SegmentNotFoundError):
        server.release_segment(42)


def test_capacity_exhaustion():
    env, server = make_server(pmem_capacity=2 * MB, segment_slot_size=1 * MB)
    server.allocate_segment(1, 1 * MB, epoch=1)
    server.allocate_segment(2, 1 * MB, epoch=1)
    with pytest.raises(CapacityError):
        server.allocate_segment(3, 1 * MB, epoch=1)


# ---------------------------------------------------------------------------
# One-sided I/O
# ---------------------------------------------------------------------------


def test_write_then_read_roundtrip():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        offset, length = yield from server.one_sided_write(1, 0, 512, b"hello")
        payload = yield from server.one_sided_read(1, offset, length)
        return payload

    assert run(env, do(env)) == b"hello"


def test_write_is_append_only():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        yield from server.one_sided_write(1, 0, 512, "a")
        # Writing anywhere but the tail is an error.
        yield from server.one_sided_write(1, 100, 512, "b")

    with pytest.raises(StorageError, match="non-append"):
        run(env, do(env))


def test_write_overflow_rejected():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        yield from server.one_sided_write(1, 0, 2 * MB, "big")

    with pytest.raises(CapacityError):
        run(env, do(env))


def test_read_unwritten_entry_rejected():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        yield from server.one_sided_read(1, 0, 100)

    with pytest.raises(StorageError):
        run(env, do(env))


def test_io_against_missing_segment_is_stale_route():
    env, server = make_server()

    def do(env):
        yield from server.one_sided_write(99, 0, 10, "x")

    with pytest.raises(StaleRouteError):
        run(env, do(env))


def test_one_sided_io_consumes_no_server_cpu():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        yield from server.one_sided_write(1, 0, 4096, "page")
        yield from server.one_sided_read(1, 0, 4096)

    run(env, do(env))
    assert server.cpu.busy_time == 0.0


def test_small_write_latency_in_tens_of_microseconds():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        start = env.now
        yield from server.one_sided_write(1, 0, 512, "log")
        return env.now - start

    latency = run(env, do(env))
    assert 5 * US < latency < 60 * US


def test_scan_entries_returns_offset_order():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        yield from server.one_sided_write(1, 0, 100, "first")
        yield from server.one_sided_write(1, 100, 200, "second")
        yield from server.one_sided_write(1, 300, 50, "third")
        return (yield from server.scan_entries(1))

    entries = run(env, do(env))
    assert [e[2] for e in entries] == ["first", "second", "third"]
    assert [e[0] for e in entries] == [0, 100, 300]


def test_reset_segment_recycles_in_place():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        yield from server.one_sided_write(1, 0, 100, "x")
        server.reset_segment(1)
        return (yield from server.one_sided_write(1, 0, 100, "y"))

    assert run(env, do(env)) == (0, 100)
    assert server.bitmap.used == 1


def test_overwrite_header_in_place():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        yield from server.overwrite_header(1, 64, "header-v1")
        yield from server.overwrite_header(1, 64, "header-v2")
        return (yield from server.one_sided_read(1, 0, 64))

    assert run(env, do(env)) == "header-v2"


# ---------------------------------------------------------------------------
# Crash / stale handling
# ---------------------------------------------------------------------------


def test_crashed_server_rejects_io_but_keeps_pmem():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def write(env):
        yield from server.one_sided_write(1, 0, 100, "persisted")

    run(env, write(env))
    server.crash()

    def read(env):
        yield from server.one_sided_read(1, 0, 100)

    with pytest.raises(StorageError):
        run(env, read(env))
    server.restart()

    def read2(env):
        return (yield from server.one_sided_read(1, 0, 100))

    assert run(env, read2(env)) == "persisted"  # PMem persistence


def test_stale_cleanup_is_deferred():
    env, server = make_server(cleanup_delay=10.0)
    server.allocate_segment(1, 1 * MB, epoch=1)
    server.mark_stale(1)
    # Too early: nothing cleaned.
    assert server.run_cleanup_cycle() == 0
    assert 1 in server.segments

    def wait(env):
        yield env.timeout(11.0)

    run(env, wait(env))
    assert server.run_cleanup_cycle() == 1
    assert 1 not in server.segments
    assert server.bitmap.free == server.bitmap.slots


def test_mark_stale_unknown_segment_is_noop():
    env, server = make_server()
    server.mark_stale(123)  # no exception
    assert server.run_cleanup_cycle() == 0


def test_ebp_lsn_map_and_scan_prunes_stale_pages():
    env, server = make_server()
    server.allocate_segment(1, 1 * MB, epoch=1)

    def do(env):
        yield from server.one_sided_write(1, 0, 100, ("page", "p1", 5))
        yield from server.one_sided_write(1, 100, 100, ("page", "p2", 9))
        yield from server.one_sided_write(1, 200, 100, "not-a-page")
        server.record_page_lsns({"p1": 7})  # p1@5 is stale now
        return (
            yield from server.scan_ebp_pages(
                lambda payload: (payload[1], payload[2])
                if isinstance(payload, tuple) and payload[0] == "page"
                else None
            )
        )

    survivors = run(env, do(env))
    assert [(s[0], s[1]) for s in survivors] == [("p2", 9)]
    assert server.cpu.busy_time > 0  # recovery scan is a CPU (RPC) path
