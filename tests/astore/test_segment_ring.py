"""Tests for SegmentRing: ring mechanics and binary-search crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import KB, MB, StorageError
from repro.sim.core import Environment
from repro.sim.rand import SeedSequence
from repro.astore.cluster import AStoreCluster
from repro.astore.segment_ring import (
    HEADER_BYTES,
    SegmentRing,
    SegmentStatus,
)


def make_ring(ring_size=4, segment_size=4 * KB, can_recycle=None, num_servers=3):
    env = Environment()
    seeds = SeedSequence(21)
    cluster = AStoreCluster(env, seeds, num_servers=num_servers,
                            segment_slot_size=1 * MB)
    client = cluster.new_client("engine")
    ring = SegmentRing(
        client,
        ring_size=ring_size,
        segment_size=segment_size,
        replication=3,
        can_recycle=can_recycle,
    )
    return env, cluster, client, ring


def run(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def test_initialize_precreates_all_segments():
    env, cluster, client, ring = make_ring(ring_size=5)

    def do(env):
        yield from ring.initialize(first_lsn=0)

    run(env, do(env))
    assert len(ring.segment_ids) == 5
    assert ring.headers[0].status == SegmentStatus.IN_USE
    assert all(h.status == SegmentStatus.EMPTY for h in ring.headers[1:])
    # All pre-created on the servers.
    for seg_id in ring.segment_ids:
        assert any(seg_id in s.segments for s in cluster.servers.values())


def test_append_before_initialize_rejected():
    env, cluster, client, ring = make_ring()

    def do(env):
        yield from ring.append(1, 100, "rec")

    with pytest.raises(StorageError):
        run(env, do(env))


def test_append_stays_in_segment_until_full():
    env, cluster, client, ring = make_ring(ring_size=3, segment_size=4 * KB)

    def do(env):
        yield from ring.initialize(first_lsn=0)
        locations = []
        for lsn in range(3):
            loc = yield from ring.append(lsn, 1000, "r%d" % lsn)
            locations.append(loc)
        return locations

    locations = run(env, do(env))
    assert len({seg for seg, _ in locations}) == 1
    assert ring.segment_advances == 0


def test_ring_advances_when_segment_full():
    env, cluster, client, ring = make_ring(ring_size=3, segment_size=4 * KB)

    def do(env):
        yield from ring.initialize(first_lsn=0)
        for lsn in range(6):
            yield from ring.append(lsn, 1500, "r%d" % lsn)

    run(env, do(env))
    assert ring.segment_advances >= 1
    # The previous segment's header must be marked FULL.
    full_headers = [h for h in ring.headers if h.status == SegmentStatus.FULL]
    assert full_headers


def test_ring_wraps_and_recycles():
    env, cluster, client, ring = make_ring(ring_size=2, segment_size=4 * KB)

    def do(env):
        yield from ring.initialize(first_lsn=0)
        for lsn in range(20):
            yield from ring.append(lsn, 1500, "r%d" % lsn)
        return ring.appends

    assert run(env, do(env)) == 20
    assert ring.segment_advances >= 8


def test_wrap_onto_unapplied_segment_fails():
    env, cluster, client, ring = make_ring(
        ring_size=2, segment_size=4 * KB, can_recycle=lambda lsn: False
    )

    def do(env):
        yield from ring.initialize(first_lsn=0)
        for lsn in range(20):
            yield from ring.append(lsn, 1500, "r%d" % lsn)

    with pytest.raises(StorageError, match="un-applied|log space"):
        run(env, do(env))


def test_oversized_append_rejected():
    env, cluster, client, ring = make_ring(segment_size=4 * KB)

    def do(env):
        yield from ring.initialize()
        yield from ring.append(0, 64 * KB, "huge")

    with pytest.raises(StorageError):
        run(env, do(env))


def test_replica_failure_mid_log_advances_ring():
    """Section V-E: on write failure the SDK closes the failed segment and
    retries on a fresh one, transparently to the DBEngine."""
    env, cluster, client, ring = make_ring(ring_size=4, num_servers=4)

    def do(env):
        yield from ring.initialize(first_lsn=0)
        yield from ring.append(1, 500, "before crash")
        seg_id = ring.segment_ids[ring.current_index]
        route = cluster.cm.lookup_route(seg_id)
        cluster.servers[route.replicas[0]].crash()
        # The next append hits the frozen segment and must succeed by
        # advancing the ring... but all ring segments share servers, so
        # restore the server to let the retry land.
        cluster.servers[route.replicas[0]].restart()
        result = yield from ring.append(2, 500, "after crash")
        return result

    seg_id, offset = run(env, do(env))
    assert ring.appends == 2


def test_recovery_finds_largest_lsn():
    env, cluster, client, ring = make_ring(ring_size=4, segment_size=4 * KB)

    def do(env):
        yield from ring.initialize(first_lsn=0)
        for lsn in range(10):
            yield from ring.append(lsn * 10, 1200, "rec-%d" % (lsn * 10))
        result = yield from ring.recover()
        return result

    result = run(env, do(env))
    assert result.max_lsn == 90
    assert result.records[-1][1] == "rec-90"
    # Records come back in LSN order.
    lsns = [lsn for lsn, _ in result.records]
    assert lsns == sorted(lsns)


def test_recovery_on_fresh_ring():
    env, cluster, client, ring = make_ring()

    def do(env):
        yield from ring.initialize(first_lsn=7)
        result = yield from ring.recover()
        return result

    result = run(env, do(env))
    assert result.start_lsn == 7
    assert result.records == []


@given(
    appends=st.integers(min_value=1, max_value=40),
    record_size=st.integers(min_value=200, max_value=1800),
    ring_size=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=12, deadline=None)
def test_recovery_always_finds_last_append(appends, record_size, ring_size):
    """Property: whatever the append/wrap pattern, recovery locates the
    record with the largest LSN."""
    env, cluster, client, ring = make_ring(
        ring_size=ring_size, segment_size=4 * KB
    )

    def do(env):
        yield from ring.initialize(first_lsn=0)
        for i in range(appends):
            yield from ring.append(i, record_size, "rec-%d" % i)
        return (yield from ring.recover())

    result = run(env, do(env))
    assert result.max_lsn == appends - 1
    assert result.records[-1][1] == "rec-%d" % (appends - 1)


def test_ring_size_validation():
    env, cluster, client, _ = make_ring()
    with pytest.raises(ValueError):
        SegmentRing(client, ring_size=1)


# ---------------------------------------------------------------------------
# Total-replica outage: typed failure, then recovery after restart
# ---------------------------------------------------------------------------


def test_total_outage_fails_typed_and_ring_recovers_after_restart():
    from repro.common import RingExhaustedError

    env, cluster, client, ring = make_ring(ring_size=4)

    def do(env):
        yield from ring.initialize(first_lsn=0)
        yield from ring.append(1, 256, "before-outage")
        # Power-fail EVERY server: no replica set can host the log.
        for server in cluster.servers.values():
            server.crash()
        try:
            yield from ring.append(2, 256, "during-outage")
            outcome = "wrote"
        except RingExhaustedError:
            outcome = "exhausted"
        except StorageError:
            outcome = "untyped"
        # Power restored (PMem contents survive).
        for server in cluster.servers.values():
            server.restart()
        yield from ring.append(3, 256, "after-restart")
        return outcome

    outcome = run(env, do(env))
    # The append failed with the *typed* ring error (callers can park
    # behind a retry policy instead of guessing from message text)...
    assert outcome == "exhausted"
    # ...and the ring kept serving appends once the fleet returned.
    assert ring.appends == 2
    assert ring.segment_advances >= 1  # walked off the frozen segment
    # The episode shows up in the client's failure counters.
    assert client.write_failures >= 1


def test_total_outage_append_does_not_wall_clock_hang():
    from repro.common import RingExhaustedError

    env, cluster, client, ring = make_ring(ring_size=4)

    def do(env):
        yield from ring.initialize(first_lsn=0)
        start = env.now
        for server in cluster.servers.values():
            server.crash()
        try:
            yield from ring.append(1, 256, "doomed")
        except (RingExhaustedError, StorageError):
            pass
        return env.now - start

    elapsed = run(env, do(env))
    # Reachability pre-checks fail fast: the walk around the ring must not
    # burn a full op_timeout per slot.
    assert elapsed < client.retry_policy.op_timeout


def test_dropped_route_is_typed_not_keyerror():
    # During a total outage the CM drops a segment's route once every
    # replica is lost; a route refresh then evicts it from the client's
    # open-segment cache.  The ring used to crash the group-commit daemon
    # with a raw KeyError on the next append; it must instead walk past
    # the slot and fail with the typed ring error.
    from repro.common import RingExhaustedError

    env, cluster, client, ring = make_ring(ring_size=4)

    def do(env):
        yield from ring.initialize(first_lsn=0)
        yield from ring.append(1, 256, "before")
        for server in cluster.servers.values():
            server.crash()
        # Simulate the detector-driven refresh after the CM dropped every
        # route: the client cache no longer knows any ring segment.
        for segment_id in list(ring.segment_ids):
            client.open_segments.pop(segment_id, None)
            cluster.cm.routes.pop(segment_id, None)
        try:
            yield from ring.append(2, 256, "during")
            outcome = "wrote"
        except RingExhaustedError:
            outcome = "exhausted"
        except StorageError:
            outcome = "untyped"
        # Power restored: the next append re-creates fresh segments.
        for server in cluster.servers.values():
            server.restart()
        yield from ring.append(3, 256, "after")
        return outcome

    outcome = run(env, do(env))
    assert outcome == "exhausted"
    assert ring.appends == 2
