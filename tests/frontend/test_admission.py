"""Tests for the serving frontend's admission controller."""

import pytest

from repro.common import OverloadError
from repro.frontend.admission import AdmissionController
from repro.sim.core import Environment


def make_controller(**kwargs):
    env = Environment()
    kwargs.setdefault("limits", {"read": 2, "write": 1})
    controller = AdmissionController(env, **kwargs)
    return env, controller


def run(env, gen, name="test"):
    proc = env.process(gen, name=name)
    env.run_until_event(proc)
    return proc.value


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        AdmissionController(env, limits={})
    with pytest.raises(ValueError):
        AdmissionController(env, limits={"read": 0})
    with pytest.raises(ValueError):
        AdmissionController(env, limits={"read": 1}, queue_limit=-1)
    with pytest.raises(ValueError):
        AdmissionController(env, limits={"read": 1}, queue_timeout=0)


def test_unknown_class_rejected():
    env, controller = make_controller()

    def work():
        yield from controller.admit("analytics")

    proc = env.process(work())
    with pytest.raises(ValueError):
        env.run_until_event(proc)


def test_admits_within_limit_without_waiting():
    env, controller = make_controller()

    def work():
        t1 = yield from controller.admit("read")
        t2 = yield from controller.admit("read")
        return t1, t2

    t1, t2 = run(env, work())
    assert controller.admitted["read"] == 2
    assert controller.rejects == 0
    controller.release("read", t1)
    controller.release("read", t2)


def test_queue_full_sheds_immediately():
    env, controller = make_controller(
        limits={"read": 1}, queue_limit=1, queue_timeout=1.0
    )
    outcomes = []

    def holder():
        yield from controller.admit("read")
        yield env.timeout(10.0)  # never releases within the test window

    def contender(tag):
        try:
            yield from controller.admit("read")
            outcomes.append((tag, "admitted"))
        except OverloadError:
            outcomes.append((tag, "shed"))

    env.process(holder())
    env.run(until=0.001)
    # First contender occupies the single queue slot; the second finds
    # the queue full and is shed synchronously.
    env.process(contender("first"))
    env.process(contender("second"))
    env.run(until=0.01)
    assert ("second", "shed") in outcomes
    assert controller.shed_queue_full == 1
    assert controller.shed["read"] == 1
    assert controller.rejects == 1


def test_deadline_shed_and_is_shedding():
    env, controller = make_controller(
        limits={"read": 1}, queue_limit=4, queue_timeout=0.005
    )
    shed = []

    def holder():
        yield from controller.admit("read")
        yield env.timeout(1.0)

    def waiter():
        try:
            yield from controller.admit("read")
        except OverloadError:
            shed.append(env.now)

    env.process(holder())
    env.run(until=0.0001)
    env.process(waiter())
    env.run(until=0.02)
    assert len(shed) == 1
    assert shed[0] == pytest.approx(0.0001 + 0.005)
    assert controller.shed_deadline == 1
    # The queue drained when the waiter gave up.
    assert controller.queue_length("read") == 0
    assert not controller.is_shedding


def test_release_restores_capacity():
    env, controller = make_controller(limits={"write": 1}, queue_timeout=0.5)
    order = []

    def first():
        ticket = yield from controller.admit("write")
        yield env.timeout(0.01)
        order.append("first-done")
        controller.release("write", ticket)

    def second():
        ticket = yield from controller.admit("write")
        order.append("second-admitted")
        controller.release("write", ticket)

    env.process(first())
    env.run(until=0.001)
    env.process(second())
    env.run(until=0.1)
    assert order == ["first-done", "second-admitted"]
    assert controller.admitted["write"] == 2
    assert controller.rejects == 0


def test_shedding_gauge_snapshot():
    from repro.obs import obs_of

    env, controller = make_controller()
    snap = obs_of(env).registry.snapshot()
    shedding = snap["frontend"]["shedding"]
    assert shedding == {
        "active": 0, "rejects": 0, "queue_full": 0, "deadline": 0,
    }
    admission = snap["frontend"]["admission"]
    assert admission["read"]["limit"] == 2
    assert admission["write"]["in_flight"] == 0
