"""Tests for the serving frontend's admission controller."""

import pytest

from repro.common import OverloadError
from repro.frontend.admission import AdmissionController, TenantAdmission
from repro.sim.core import Environment


def make_controller(**kwargs):
    env = Environment()
    kwargs.setdefault("limits", {"read": 2, "write": 1})
    controller = AdmissionController(env, **kwargs)
    return env, controller


def run(env, gen, name="test"):
    proc = env.process(gen, name=name)
    env.run_until_event(proc)
    return proc.value


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        AdmissionController(env, limits={})
    with pytest.raises(ValueError):
        AdmissionController(env, limits={"read": 0})
    with pytest.raises(ValueError):
        AdmissionController(env, limits={"read": 1}, queue_limit=-1)
    with pytest.raises(ValueError):
        AdmissionController(env, limits={"read": 1}, queue_timeout=0)


def test_unknown_class_rejected():
    env, controller = make_controller()

    def work():
        yield from controller.admit("analytics")

    proc = env.process(work())
    with pytest.raises(ValueError):
        env.run_until_event(proc)


def test_admits_within_limit_without_waiting():
    env, controller = make_controller()

    def work():
        t1 = yield from controller.admit("read")
        t2 = yield from controller.admit("read")
        return t1, t2

    t1, t2 = run(env, work())
    assert controller.admitted["read"] == 2
    assert controller.rejects == 0
    controller.release("read", t1)
    controller.release("read", t2)


def test_queue_full_sheds_immediately():
    env, controller = make_controller(
        limits={"read": 1}, queue_limit=1, queue_timeout=1.0
    )
    outcomes = []

    def holder():
        yield from controller.admit("read")
        yield env.timeout(10.0)  # never releases within the test window

    def contender(tag):
        try:
            yield from controller.admit("read")
            outcomes.append((tag, "admitted"))
        except OverloadError:
            outcomes.append((tag, "shed"))

    env.process(holder())
    env.run(until=0.001)
    # First contender occupies the single queue slot; the second finds
    # the queue full and is shed synchronously.
    env.process(contender("first"))
    env.process(contender("second"))
    env.run(until=0.01)
    assert ("second", "shed") in outcomes
    assert controller.shed_queue_full == 1
    assert controller.shed["read"] == 1
    assert controller.rejects == 1


def test_deadline_shed_and_is_shedding():
    env, controller = make_controller(
        limits={"read": 1}, queue_limit=4, queue_timeout=0.005
    )
    shed = []

    def holder():
        yield from controller.admit("read")
        yield env.timeout(1.0)

    def waiter():
        try:
            yield from controller.admit("read")
        except OverloadError:
            shed.append(env.now)

    env.process(holder())
    env.run(until=0.0001)
    env.process(waiter())
    env.run(until=0.02)
    assert len(shed) == 1
    assert shed[0] == pytest.approx(0.0001 + 0.005)
    assert controller.shed_deadline == 1
    # The queue drained when the waiter gave up.
    assert controller.queue_length("read") == 0
    assert not controller.is_shedding


def test_release_restores_capacity():
    env, controller = make_controller(limits={"write": 1}, queue_timeout=0.5)
    order = []

    def first():
        ticket = yield from controller.admit("write")
        yield env.timeout(0.01)
        order.append("first-done")
        controller.release("write", ticket)

    def second():
        ticket = yield from controller.admit("write")
        order.append("second-admitted")
        controller.release("write", ticket)

    env.process(first())
    env.run(until=0.001)
    env.process(second())
    env.run(until=0.1)
    assert order == ["first-done", "second-admitted"]
    assert controller.admitted["write"] == 2
    assert controller.rejects == 0


def test_shedding_gauge_snapshot():
    from repro.obs import obs_of

    env, controller = make_controller()
    snap = obs_of(env).registry.snapshot()
    shedding = snap["frontend"]["shedding"]
    assert shedding == {
        "active": 0, "rejects": 0, "queue_full": 0, "deadline": 0,
    }
    admission = snap["frontend"]["admission"]
    assert admission["read"]["limit"] == 2
    assert admission["write"]["in_flight"] == 0


def test_grant_racing_deadline_is_shed_not_executed():
    """A slot granted on the deadline tick must be shed, not run.

    Queue wait is measured from enqueue.  The holder releases its slot
    at exactly the waiter's deadline instant; the waiter's grant and
    deadline land on the same tick.  The expired waiter must raise
    OverloadError (never execute) and the slot must flow back to the
    pool so the next request is admitted instantly.
    """
    env, controller = make_controller(
        limits={"read": 1}, queue_limit=4, queue_timeout=0.005
    )
    outcomes = []

    def holder():
        ticket = yield from controller.admit("read")
        # Release exactly when the waiter (enqueued at t=0) expires.
        yield env.timeout(0.005)
        controller.release("read", ticket)

    def waiter():
        try:
            yield from controller.admit("read")
            outcomes.append("executed")
        except OverloadError:
            outcomes.append("shed")

    def latecomer():
        yield env.timeout(0.006)
        ticket = yield from controller.admit("read")
        outcomes.append(("latecomer-admitted", env.now))
        controller.release("read", ticket)

    # Same-tick start: the holder grabs the slot at t=0, the waiter
    # enqueues at t=0, so grant and deadline collide at exactly t=0.005.
    env.process(holder())
    env.process(waiter())
    env.process(latecomer())
    env.run(until=0.05)
    assert "executed" not in outcomes
    assert "shed" in outcomes
    assert controller.shed_deadline == 1
    # The raced slot was handed back: the latecomer is admitted with no
    # queue wait at all.
    assert ("latecomer-admitted", 0.006) in outcomes


# ----------------------------------------------------------------------
# TenantAdmission (weighted fair lane hand-out for the session mux)
# ----------------------------------------------------------------------

def make_wfq(tenants=None, slots=4, **kwargs):
    env = Environment()
    if tenants is None:
        tenants = {"gold": 4, "bronze": 1}
    wfq = TenantAdmission(env, tenants, list(range(slots)), **kwargs)
    return env, wfq


def test_wfq_validation():
    env = Environment()
    with pytest.raises(ValueError):
        TenantAdmission(env, {}, [0])
    with pytest.raises(ValueError):
        TenantAdmission(env, {"a": 0}, [0])
    with pytest.raises(ValueError):
        TenantAdmission(env, {"a": 1}, [])
    with pytest.raises(ValueError):
        TenantAdmission(env, {"a": 1}, [0], queue_limit=-1)
    with pytest.raises(ValueError):
        TenantAdmission(env, {"a": 1}, [0], queue_timeout=0)


def test_wfq_unknown_tenant():
    env, wfq = make_wfq()

    def work():
        yield from wfq.acquire("platinum")

    proc = env.process(work())
    with pytest.raises(ValueError):
        env.run_until_event(proc)


def test_wfq_fast_path_never_queues_idle_pool():
    env, wfq = make_wfq(slots=2)

    def work():
        a = yield from wfq.acquire("bronze")
        b = yield from wfq.acquire("bronze")
        return a, b

    a, b = run(env, work())
    assert {a, b} == {0, 1}
    assert wfq.admitted["bronze"] == 2
    assert wfq.queue_depth == 0


def test_wfq_weights_drive_grant_shares_under_contention():
    """Backlogged tenants receive slots in weight proportion (DRR).

    Eight workers per tenant keep both queues backlogged while the
    single slot frees up one statement at a time - the cursor must park
    on a tenant until its weight's worth of grants is spent, or DRR
    degenerates to 1:1 round robin.
    """
    env, wfq = make_wfq(tenants={"gold": 3, "bronze": 1}, slots=1,
                        queue_timeout=10.0, queue_limit=1000)
    grants = []

    def worker(tenant):
        while env.now < 0.08:
            slot = yield from wfq.acquire(tenant)
            grants.append(tenant)
            yield env.timeout(0.001)
            wfq.release(slot)

    for _ in range(8):
        env.process(worker("gold"))
        env.process(worker("bronze"))
    env.run(until=0.1)
    # A steady-state contended window past the startup transient.
    window = grants[8:48]
    gold = window.count("gold")
    bronze = window.count("bronze")
    assert gold + bronze == 40
    # Weight 3:1 => expect ~30:10; allow slack for lap boundaries.
    assert 27 <= gold <= 33, (gold, bronze)


def test_wfq_queue_full_sheds():
    env, wfq = make_wfq(tenants={"a": 1}, slots=1, queue_limit=1,
                        queue_timeout=1.0)
    outcomes = []

    def holder():
        slot = yield from wfq.acquire("a")
        yield env.timeout(10.0)
        wfq.release(slot)

    def contender(tag):
        try:
            yield from wfq.acquire("a")
            outcomes.append((tag, "admitted"))
        except OverloadError:
            outcomes.append((tag, "shed"))

    env.process(holder())
    env.run(until=0.001)
    env.process(contender("first"))
    env.process(contender("second"))
    env.run(until=0.01)
    assert ("second", "shed") in outcomes
    assert wfq.shed_queue_full == 1
    assert wfq.shed["a"] == 1


def test_wfq_expired_waiter_shed_at_dispatch_never_granted():
    """Deadline is enqueue-measured and enforced at grant time.

    The holder keeps the only slot past the waiter's deadline; when the
    slot finally frees, the dispatcher must shed the expired waiter
    (OverloadError) instead of granting it, and the slot must go to the
    fresh waiter instead.
    """
    env, wfq = make_wfq(tenants={"a": 1}, slots=1, queue_timeout=0.005)
    outcomes = []

    def holder():
        slot = yield from wfq.acquire("a")
        yield env.timeout(0.02)  # well past the waiter's deadline
        wfq.release(slot)

    def stale_waiter():
        try:
            yield from wfq.acquire("a")
            outcomes.append("stale-granted")
        except OverloadError:
            outcomes.append("stale-shed")

    def fresh_waiter():
        yield env.timeout(0.019)  # enqueues just before the release
        slot = yield from wfq.acquire("a")
        outcomes.append("fresh-granted")
        wfq.release(slot)

    env.process(holder())
    env.run(until=0.001)
    env.process(stale_waiter())
    env.process(fresh_waiter())
    env.run(until=0.1)
    assert outcomes.count("stale-shed") == 1
    assert "stale-granted" not in outcomes
    assert "fresh-granted" in outcomes
    assert wfq.shed_deadline == 1
    assert wfq.admitted["a"] == 2  # holder + fresh waiter


def test_wfq_release_regrants_fifo_within_tenant():
    env, wfq = make_wfq(tenants={"a": 1}, slots=1, queue_timeout=5.0)
    order = []

    def holder():
        slot = yield from wfq.acquire("a")
        yield env.timeout(0.001)
        wfq.release(slot)

    def waiter(tag, delay):
        yield env.timeout(delay)
        slot = yield from wfq.acquire("a")
        order.append(tag)
        wfq.release(slot)

    env.process(holder())
    env.process(waiter("first", 0.0001))
    env.process(waiter("second", 0.0002))
    env.run(until=0.1)
    assert order == ["first", "second"]
