"""Tests for the session mux: park/unpark fidelity, lanes, tenancy."""

import pytest

from repro.common import OverloadError, QueryError
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.harness.deployment import DeploymentSpec


def build(lanes=2, tenants=None, replicas=2, seed=23, **mux_kwargs):
    spec = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=3)
        .with_replicas(replicas)
        .with_multiplexing(lanes, tenants, **mux_kwargs)
        .with_fault_tolerance(heartbeat_interval=0.05, failure_timeout=0.15)
    )
    dep = spec.build()
    dep.start()
    dep.engine.create_table(
        "kv",
        Schema([Column("k", INT()), Column("v", INT()),
                Column("pad", VARCHAR(32))]),
        ["k"],
    )
    dep.fleet.sync_catalogs()
    return dep


def run(dep, gen, name="test"):
    proc = dep.env.process(gen, name=name)
    dep.env.run_until_event(proc)
    return proc.value


def insert_rows(dep, ms, count, start=0):
    def work(txn):
        for k in range(start, start + count):
            yield from dep.engine.insert(txn, "kv", [k, k * 10, "p"])
        return count

    return run(dep, dep.mux.write(ms, work))


def test_spec_validation():
    with pytest.raises(ValueError):
        DeploymentSpec.astore_ebp(seed=1).with_multiplexing(2)  # no replicas
    with pytest.raises(ValueError):
        (DeploymentSpec.astore_ebp(seed=1).with_replicas(1)
         .with_multiplexing(-1))
    with pytest.raises(ValueError):
        (DeploymentSpec.astore_ebp(seed=1).with_replicas(1)
         .with_multiplexing(2, {"a": 0}))
    # Valid spec builds a mux; a spec without one raises on mux_session.
    dep = build()
    assert dep.mux is not None
    plain = DeploymentSpec.astore_ebp(seed=1).build()
    with pytest.raises(ValueError):
        plain.mux_session()


def test_open_sessions_are_descriptors_not_live_sessions():
    """O(active) fidelity: parked sessions hold no live proxy session."""
    dep = build(lanes=2)
    live_before = len(dep.frontend.sessions)
    for i in range(500):
        dep.mux.open("s-%d" % i)
    # 500 opens added zero live ProxySessions: only the lanes are live.
    assert len(dep.frontend.sessions) == live_before
    assert live_before == 2  # the two lanes
    assert len(dep.mux.sessions) == 500


def test_open_rejects_duplicates_and_unknown_tenants():
    dep = build(lanes=2, tenants={"gold": 2, "bronze": 1})
    dep.mux.open("a", "gold")
    with pytest.raises(ValueError):
        dep.mux.open("a", "gold")
    with pytest.raises(ValueError):
        dep.mux.open("b", "platinum")


def test_read_your_writes_across_park_unpark():
    """The descriptor's token survives parking: reads are never stale."""
    dep = build(lanes=2)
    ms = dep.mux.open("client")
    insert_rows(dep, ms, 10)
    dep.run_for(0.05)

    def update_then_read():
        def bump(txn):
            yield from dep.engine.update(txn, "kv", (3,), {"v": 999})
            return True

        yield from dep.mux.write(ms, bump)
        # The session is parked and rebound between statements; the
        # restored token must still force the replica to catch up (or
        # bounce to primary) - never serve v=30.
        return (yield from dep.mux.read_row(ms, "kv", (3,)))

    row = run(dep, update_then_read())
    assert row[1] == 999
    assert ms.last_commit_lsn > 0


def test_interleaved_sessions_keep_tokens_isolated():
    """Two descriptors sharing lanes never leak each other's tokens."""
    dep = build(lanes=1)  # force both sessions over ONE lane
    writer = dep.mux.open("writer")
    reader = dep.mux.open("reader")
    insert_rows(dep, writer, 5)
    dep.run_for(0.05)
    lsn_before = list(reader.lsns)

    def bump(txn):
        yield from dep.engine.update(txn, "kv", (1,), {"v": 111})
        return True

    run(dep, dep.mux.write(writer, bump))
    # The writer's commit advanced its own parked token, not the
    # reader's (the reader never wrote).
    assert writer.last_commit_lsn > 0
    assert list(reader.lsns) == lsn_before
    # And the writer still reads its own write through the shared lane.
    row = run(dep, dep.mux.read_row(writer, "kv", (1,)))
    assert row[1] == 111


def test_prepared_statements_survive_parking():
    dep = build(lanes=2)
    ms = dep.mux.open("client")
    insert_rows(dep, ms, 10)
    dep.run_for(0.05)
    prepared = dep.mux.prepare(ms, "SELECT v FROM kv WHERE k = ?")
    # Handles are descriptor-cached: preparing the same text again
    # returns the same handle (no per-call allocation).
    assert dep.mux.prepare(ms, "SELECT v FROM kv WHERE k = ?") is prepared
    first = run(dep, prepared.execute(4))
    # Interleave another descriptor onto the lanes, then re-execute.
    other = dep.mux.open("other")
    run(dep, dep.mux.read_row(other, "kv", (1,)))
    second = run(dep, prepared.execute(4))
    assert first.rows == second.rows == [(40,)]
    with pytest.raises(QueryError):
        run(dep, prepared.execute(1, 2))  # wrong arity


def test_lane_counters_and_gauge():
    dep = build(lanes=2)
    ms = dep.mux.open("client")
    insert_rows(dep, ms, 4)
    dep.run_for(0.05)
    run(dep, dep.mux.read_row(ms, "kv", (2,)))
    run(dep, dep.mux.execute(ms, "SELECT v FROM kv WHERE k = 3"))
    snap = dep.registry.snapshot()["frontend"]["mux"]
    assert snap["sessions"] == 1
    assert snap["lanes"] == 2
    assert snap["active"] == 0          # nothing in flight now
    assert snap["statements"] == 3      # write + read_row + execute
    assert snap["binds"] == 3
    assert ms.statements == 3
    assert ms.binds == 3
    assert ms.reads == 2
    assert ms.writes == 1


def test_tenant_shed_propagates_overload_error():
    dep = build(lanes=1, tenants={"a": 1}, queue_limit=0,
                queue_timeout=0.001)
    first = dep.mux.open("first", "a")
    second = dep.mux.open("second", "a")
    insert_rows(dep, first, 2)
    dep.run_for(0.05)

    outcomes = []

    def slow(txn):
        yield dep.env.timeout(0.05)
        yield from dep.engine.update(txn, "kv", (0,), {"v": 1})
        return True

    def contender():
        try:
            yield from dep.mux.read_row(second, "kv", (1,))
            outcomes.append("admitted")
        except OverloadError:
            outcomes.append("shed")

    dep.env.process(dep.mux.write(first, slow), name="holder")
    dep.run_for(0.005)  # the write binds the only lane
    dep.env.process(contender(), name="contender")
    dep.run_for(0.2)
    assert outcomes == ["shed"]
    assert dep.mux.wfq.shed["a"] == 1
