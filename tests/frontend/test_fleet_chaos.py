"""Replica-fleet chaos: kill a replica mid-read-stream and recover.

The serving layer's correctness bar under chaos (ISSUE satellite): no
session may ever observe a version older than its own commit token, and
read throughput must recover once the replica rejoins.
"""

from repro.common import MS
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.harness.chaos import ChaosInjector, ChaosSchedule
from repro.harness.deployment import DeploymentSpec


def build(seed=31, **replica_kwargs):
    spec = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=3)
        .with_replicas(2, **replica_kwargs)
        .with_fault_tolerance(heartbeat_interval=0.02, failure_timeout=0.1)
    )
    dep = spec.build()
    dep.start()
    dep.engine.create_table(
        "kv",
        Schema([Column("k", INT()), Column("v", INT()),
                Column("pad", VARCHAR(32))]),
        ["k"],
    )
    dep.fleet.sync_catalogs()
    return dep


def run(dep, gen, name="test"):
    proc = dep.env.process(gen, name=name)
    dep.env.run_until_event(proc)
    return proc.value


def load(dep, session, count):
    def work(txn):
        for k in range(count):
            yield from dep.engine.insert(txn, "kv", [k, 0, "p"])
        return count

    return run(dep, session.write(work))


def test_replica_crash_mid_stream_no_stale_reads():
    # Round-robin so both replicas serve reads: least-lag's index
    # tiebreak would park every read on replica-0 once lag drains.
    dep = build(policy="round-robin")
    env = dep.env
    keys = 30
    writer = dep.frontend_session("writer")
    load(dep, writer, keys)
    dep.run_for(0.05)

    violations = []
    counters = {"reads": 0, "writes": 0}

    def mixed(session, rng, duration):
        committed = {}
        deadline = env.now + duration
        while env.now < deadline:
            k = rng.randint(0, keys - 1)

            def bump(txn, key=k):
                row = yield from dep.engine.read_row(
                    txn, "kv", (key,), for_update=True
                )
                version = row[1] + 1
                yield from dep.engine.update(
                    txn, "kv", (key,), {"v": version}
                )
                return version

            committed[k] = yield from session.write(bump)
            counters["writes"] += 1
            for _ in range(3):
                read_key = rng.randint(0, keys - 1)
                row = yield from session.read_row("kv", (read_key,))
                counters["reads"] += 1
                expect = committed.get(read_key)
                if row is None:
                    violations.append("missing %d" % read_key)
                elif expect is not None and row[1] < expect:
                    violations.append(
                        "stale %d: %d < %d via %s"
                        % (read_key, row[1], expect, session.last_route)
                    )

    victim = dep.fleet.handles[1]
    recovery = {}

    def watch_victim():
        while victim.admitted:
            yield env.timeout(1 * MS)
        recovery["reads_at_drain"] = victim.reads_served
        while not victim.admitted:
            yield env.timeout(1 * MS)
        recovery["reads_at_rejoin"] = victim.reads_served

    schedule = (
        ChaosSchedule()
        .add(0.06, "replica_crash", "replica-1")
        .add(0.12, "replica_restart", "replica-1")
    )
    ChaosInjector(dep, schedule).start()
    env.process(watch_victim(), name="watch-victim")
    procs = [
        env.process(
            mixed(dep.frontend_session("mixed-%d" % i),
                  dep.seeds.stream("chaos-mixed-%d" % i), 0.3),
            name="mixed-%d" % i,
        )
        for i in range(2)
    ]
    from repro.sim.core import AllOf

    env.run_until_event(AllOf(env, procs))
    dep.run_for(0.1)  # post-run settle: lag drains, reads keep flowing

    assert violations == []
    assert counters["reads"] > 50
    assert dep.fleet.drains == 1
    assert dep.fleet.rejoins == 1
    assert victim.replica.crashes == 1
    assert victim.replica.recoveries == 1
    assert victim.replica.alive
    # Throughput recovered: the victim served reads before the crash
    # and again after the rejoin.
    assert recovery["reads_at_drain"] > 0
    final = victim.reads_served
    assert final > recovery["reads_at_rejoin"] >= recovery["reads_at_drain"]
    # And the whole fleet is routable again.
    assert len(dep.fleet.routable_handles()) == 2


def test_crash_during_lsn_wait_reroutes():
    # The replica can never catch a huge token; a crash mid-wait must
    # surface as wait failure (the proxy then bounces), not a hang.
    dep = build(apply_intervals=(0.5, 0.5), wait_timeout=0.3)
    env = dep.env
    handle = dep.fleet.handles[0]

    def waiter():
        return (
            yield from dep.fleet.wait_for_lsn(
                handle, lsn=10**12, max_wait=0.3
            )
        )

    proc = env.process(waiter(), name="waiter")
    env.run(until=0.01)
    dep.fleet.crash("replica-0")
    dep.fleet.health_sweep()
    env.run_until_event(proc)
    assert proc.value is False
    assert env.now < 0.3  # gave up on drain, not on the deadline
    assert dep.fleet.lsn_wait_timeouts == 1


def test_detector_drains_dead_replica():
    dep = build()
    dep.run_for(0.05)
    dep.fleet.handles[0].replica.crash()
    # No manual sweep: the AStore failure detector's heartbeat loop
    # notices on its next round.
    dep.run_for(0.1)
    assert not dep.fleet.handles[0].admitted
    assert dep.detector.replicas_drained == 1
    assert dep.fleet.drains == 1


def test_failed_restart_stays_drained():
    from repro.common import StorageError

    dep = build()
    session = dep.frontend_session("writer")
    load(dep, session, 10)
    dep.run_for(0.05)
    dep.fleet.crash("replica-0")
    dep.fleet.health_sweep()

    # Recovery scans PageStore through the primary's degraded read path;
    # make that path fail (a total outage) so the rebuild cannot finish.
    def dead_read(page_id, required_lsn):
        raise StorageError("pagestore unreachable")
        yield  # pragma: no cover - makes this a generator

    dep.engine._read_from_pagestore = dead_read
    dep.fleet.restart("replica-0")
    dep.run_for(0.2)
    assert dep.fleet.failed_restarts == 1
    assert dep.fleet.rejoins == 0
    assert not dep.fleet.handles[0].admitted
