"""Property test: park/unpark preserves RYW and prepared results.

Drives random interleavings of write / read / prepared-read / lane
churn through one multiplexed descriptor while mirroring every logical
op onto a never-parked control :class:`ProxySession` in the same
deployment (disjoint keys, identical values).  The deployment has a
single lane and a second "churn" descriptor rebinding it, so the
subject descriptor is parked and its token restored between *every*
statement; any token or prepared-state leakage across the park/bind
cycle shows up as a stale read or rows diverging from the control's.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.harness.deployment import DeploymentSpec

KEYS = 6

#: Each logical key k owns three physical rows: subject (3k), control
#: (3k+1), churn (3k+2) - same initial value, disjoint writers.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, KEYS - 1),
                  st.integers(0, 999)),
        st.tuples(st.just("read"), st.integers(0, KEYS - 1)),
        st.tuples(st.just("prepared"), st.integers(0, KEYS - 1)),
        st.tuples(st.just("churn")),
    ),
    min_size=1,
    max_size=14,
)


def build(seed):
    spec = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=3)
        .with_replicas(2)
        .with_multiplexing(1)
        .with_fault_tolerance(heartbeat_interval=0.05, failure_timeout=0.15)
    )
    dep = spec.build()
    dep.start()
    dep.engine.create_table(
        "kv",
        Schema([Column("k", INT()), Column("v", INT()),
                Column("pad", VARCHAR(32))]),
        ["k"],
    )
    dep.fleet.sync_catalogs()
    return dep


def run(dep, gen, name="test"):
    proc = dep.env.process(gen, name=name)
    dep.env.run_until_event(proc)
    return proc.value


@settings(max_examples=20, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS, seed=st.integers(1, 10_000))
def test_mux_session_matches_never_parked_control(ops, seed):
    dep = build(seed)
    subject = dep.mux_session("subject")
    churn = dep.mux_session("churn")
    control = dep.frontend_session("control")

    def seed_rows(txn):
        for k in range(KEYS):
            for col in (3 * k, 3 * k + 1, 3 * k + 2):
                yield from dep.engine.insert(txn, "kv", [col, k * 10, "p"])
        return True

    run(dep, control.write(seed_rows))
    dep.run_for(0.05)

    model = {k: k * 10 for k in range(KEYS)}
    sub_prep = dep.mux.prepare(subject, "SELECT v FROM kv WHERE k = ?")
    ctl_prep = control.prepare("SELECT v FROM kv WHERE k = ?")
    churn_tick = [0]

    def driver():
        for op in ops:
            kind = op[0]
            if kind == "write":
                _, k, v = op

                def bump(key, value):
                    def work(txn):
                        yield from dep.engine.update(
                            txn, "kv", (key,), {"v": value}
                        )
                        return True
                    return work

                yield from dep.mux.write(subject, bump(3 * k, v))
                yield from control.write(bump(3 * k + 1, v))
                model[k] = v
            elif kind == "read":
                k = op[1]
                # Immediately after any write the replicas lag: a lost
                # or stale parked token would serve the old value here.
                sub_row = yield from dep.mux.read_row(
                    subject, "kv", (3 * k,)
                )
                ctl_row = yield from control.read_row("kv", (3 * k + 1,))
                assert sub_row[1] == model[k], "stale multiplexed read"
                assert sub_row[1:] == ctl_row[1:]
            elif kind == "prepared":
                k = op[1]
                sub_res = yield from sub_prep.execute(3 * k)
                ctl_res = yield from ctl_prep.execute(3 * k + 1)
                assert sub_res.rows == [(model[k],)], "stale prepared read"
                assert sub_res.rows == ctl_res.rows
            else:
                # Rebind the single lane to another descriptor and push
                # the global LSN past the subject's parked token, so a
                # bind that leaked lane state (instead of restoring the
                # descriptor's) would surface on the next subject op.
                churn_tick[0] += 1

                def advance(txn, tick=churn_tick[0]):
                    yield from dep.engine.update(
                        txn, "kv", (2,), {"v": tick}
                    )
                    return True

                yield from dep.mux.write(churn, advance)
                yield from dep.mux.read_row(churn, "kv", (5,))
        return True

    run(dep, driver())
    writes = sum(1 for op in ops if op[0] == "write")
    assert subject.writes == writes
    assert control.writes == writes + 1  # + the row-seeding write
    # Parking never dropped a commit: whenever the subject wrote, its
    # parked token carries a positive commit LSN just like the control.
    if writes:
        assert subject.last_commit_lsn > 0
        assert control.last_commit_lsn > 0
