"""Tests for the SQL proxy: routing, session consistency, observability."""

import pytest

from repro.common import MS
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.harness.deployment import DeploymentSpec
from repro.harness.stats import collect_stats


def build(replicas=2, seed=23, **replica_kwargs):
    spec = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=3)
        .with_replicas(replicas, **replica_kwargs)
        .with_fault_tolerance(heartbeat_interval=0.05, failure_timeout=0.15)
    )
    dep = spec.build()
    dep.start()
    dep.engine.create_table(
        "kv",
        Schema([Column("k", INT()), Column("v", INT()),
                Column("pad", VARCHAR(32))]),
        ["k"],
    )
    dep.fleet.sync_catalogs()
    return dep


def run(dep, gen, name="test"):
    proc = dep.env.process(gen, name=name)
    dep.env.run_until_event(proc)
    return proc.value


def insert_rows(dep, session, count, start=0):
    def work(txn):
        for k in range(start, start + count):
            yield from dep.engine.insert(txn, "kv", [k, k * 10, "p"])
        return count

    return run(dep, session.write(work))


def test_read_routes_to_replica_after_catchup():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 20)
    dep.run_for(0.05)  # let the fleet apply the REDO
    row = run(dep, session.read_row("kv", (7,)))
    assert row[:2] == [7, 70]
    assert session.last_route.startswith("replica-")
    assert dep.frontend.reads_replica == 1
    assert dep.frontend.reads_primary == 0


def test_read_your_writes_never_stale():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 10)
    dep.run_for(0.05)

    def update_then_read():
        def bump(txn):
            yield from dep.engine.update(txn, "kv", (3,), {"v": 999})
            return True

        yield from session.write(bump)
        # Immediately read back: the replica lags, so the proxy must
        # either wait for our commit LSN or bounce to the primary -
        # never serve the old version.
        return (yield from session.read_row("kv", (3,)))

    row = run(dep, update_then_read())
    assert row[1] == 999
    assert session.last_commit_lsn > 0


def test_lag_timeout_bounces_to_primary():
    # Replica applies every 200 ms but reads only wait 1 ms: a fresh
    # write must bounce its read to the primary.
    dep = build(apply_intervals=(0.2, 0.2), wait_timeout=1 * MS)
    session = dep.frontend_session("client")
    insert_rows(dep, session, 5)
    row = run(dep, session.read_row("kv", (2,)))
    assert row[1] == 20
    assert session.last_route == "primary"
    assert dep.frontend.bounces["lag_timeout"] >= 1
    assert dep.frontend.reads_primary >= 1


def test_select_routes_to_replica_and_matches_primary():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 30)
    dep.run_for(0.05)
    sql = "SELECT COUNT(*) AS n, SUM(v) AS total FROM kv WHERE k BETWEEN 0 AND 9"
    routed = run(dep, session.execute(sql))
    assert session.last_route.startswith("replica-")
    direct = run(dep, dep.frontend.primary_session.execute(sql))
    assert routed.rows == direct.rows
    assert routed.rows[0][0] == 10


def test_dml_routes_to_primary_and_advances_token():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 5)
    token_before = session.last_commit_lsn
    run(dep, session.execute("UPDATE kv SET v = 1 WHERE k = 2"))
    assert session.last_commit_lsn > token_before
    assert dep.frontend.writes == 2
    dep.run_for(0.05)
    row = run(dep, session.read_row("kv", (2,)))
    assert row[1] == 1


def test_no_replica_bounces_to_primary():
    dep = build()
    for handle in dep.fleet.handles:
        handle.admitted = False
    session = dep.frontend_session("client")
    insert_rows(dep, session, 3)
    row = run(dep, session.read_row("kv", (1,)))
    assert row[1] == 10
    assert session.last_route == "primary"
    assert dep.frontend.bounces["no_replica"] == 1


def test_replica_gauges_in_stats_snapshot():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 10)
    dep.run_for(0.05)
    run(dep, session.read_row("kv", (4,)))
    snap = collect_stats(dep)
    replicas = snap["frontend"]["replicas"]
    assert set(replicas) == {"replica-0", "replica-1"}
    for state in replicas.values():
        assert state["alive"] is True
        assert state["applied_lsn"] > 0
        assert state["lag_lsn"] >= 0
        assert state["records_applied"] > 0
    assert sum(s["reads_served"] for s in replicas.values()) == 1
    fleet = snap["frontend"]["fleet"]
    assert fleet["size"] == 2
    assert fleet["routable"] == 2


def test_session_names_and_frontend_session_guard():
    dep = build()
    named = dep.frontend_session("alpha")
    auto = dep.frontend_session()
    assert named.name == "alpha"
    assert auto.name.startswith("session-")
    stock = DeploymentSpec.stock(seed=5).build()
    with pytest.raises(ValueError):
        stock.frontend_session()


def test_spec_validation_for_serving_fields():
    with pytest.raises(ValueError):
        DeploymentSpec(replicas=-1)
    with pytest.raises(ValueError):
        DeploymentSpec(replicas=2, replica_policy="random")
    with pytest.raises(ValueError):
        DeploymentSpec(replicas=2, replica_apply_intervals=(1 * MS,))
    with pytest.raises(ValueError):
        DeploymentSpec(replicas=2, admission_queue_limit=-1)
    with pytest.raises(ValueError):
        DeploymentSpec(replicas=2, replica_wait_timeout=0)
    # Valid spec: builder round-trip keeps the fields.
    spec = DeploymentSpec.astore_ebp(seed=1).with_replicas(
        3, policy="p2c", staleness_bound=4096,
        apply_intervals=(1 * MS, 2 * MS, 3 * MS),
    ).with_admission(read_limit=8, queue_limit=4)
    assert spec.replicas == 3
    assert spec.replica_policy == "p2c"
    assert spec.replica_staleness_bound == 4096
    assert spec.admission_read_limit == 8
    assert spec.admission_queue_limit == 4


def test_write_rolls_back_when_commit_fails():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 5)
    engine = dep.engine
    rollbacks = []
    real_commit = engine.commit
    real_rollback = engine.rollback

    def failing_commit(txn):
        raise RuntimeError("simulated commit failure")
        yield  # pragma: no cover

    def recording_rollback(txn):
        rollbacks.append(txn)
        return (yield from real_rollback(txn))

    engine.commit = failing_commit
    engine.rollback = recording_rollback

    def bump(txn):
        yield from engine.update(txn, "kv", (2,), {"v": 111})
        return True

    def attempt():
        try:
            yield from session.write(bump)
            return "committed"
        except RuntimeError as exc:
            return str(exc)

    outcome = run(dep, attempt())
    assert outcome == "simulated commit failure"
    assert len(rollbacks) == 1  # commit failure must roll the txn back

    engine.commit = real_commit
    engine.rollback = real_rollback
    # The failed transaction's locks were released: the same key is
    # immediately writable again.
    def bump2(txn):
        yield from engine.update(txn, "kv", (2,), {"v": 222})
        return True

    assert run(dep, session.write(bump2)) is True
    row = run(dep, session.read_row("kv", (2,)))
    assert row[1] == 222


def test_default_session_names_avoid_explicit_collisions():
    dep = build()
    proxy = dep.frontend
    taken = proxy.session("session-1")
    a = proxy.session()
    b = proxy.session()
    names = [taken.name, a.name, b.name]
    assert len(set(names)) == 3
    assert all(s.name in names for s in (taken, a, b))


def test_proxy_prepared_statement_routes_like_plain_sql():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 12)
    dep.run_for(0.05)

    select = session.prepare("SELECT k, v FROM kv WHERE k = ?")
    assert select.param_count == 1
    result = run(dep, select.execute(4))
    assert [list(r) for r in result.rows] == [[4, 40]]
    assert session.last_route.startswith("replica-")

    update = session.prepare("UPDATE kv SET v = ? WHERE k = ?")
    before = session.last_commit_lsn
    run(dep, update.execute(777, 4))
    assert session.last_commit_lsn > before  # DML went to the primary
    row = run(dep, session.read_row("kv", (4,)))
    assert row[1] == 777
