"""Tests for the ``python -m repro serve`` scenario (determinism, overload)."""

import pytest

from repro.frontend.serve import run_serving

# Small-but-real scenario: long enough to cross the chaos crash/restart
# points (30% / 55% of the duration) with every driver class active.
SMALL = dict(
    seed=7, duration=0.25, write_terminals=1,
    mixed_sessions=2, read_sessions=2,
)


@pytest.fixture(scope="module")
def small_report():
    return run_serving(**SMALL)


def test_serve_report_is_consistent_and_ok(small_report):
    report = small_report
    assert report["ok"] is True
    assert report["violations"] == []
    assert report["consistency"]["stale_reads"] == 0
    assert report["consistency"]["missing_rows"] == 0
    assert report["consistency"]["checks"] > 0
    assert report["tpcc"]["committed"] > 0
    assert report["mixed"]["writes"] > 0
    assert report["reads"]["replica"] > 0
    assert report["reads"]["total"] == (
        report["reads"]["replica"] + report["reads"]["primary"]
    )
    assert sum(report["reads"]["per_replica"].values()) == \
        report["reads"]["replica"]


def test_serve_chaos_cycle_recovers(small_report):
    report = small_report
    assert len(report["chaos_log"]) == 2
    assert "crashed replica replica-1" in report["chaos_log"][0]
    fleet = report["fleet"]
    assert fleet["drains"] == 1
    assert fleet["rejoins"] == 1
    assert fleet["failed_restarts"] == 0
    victim = fleet["replicas"]["replica-1"]
    assert victim["crashes"] == 1
    assert victim["recoveries"] == 1
    assert victim["alive"] is True
    # The victim served reads (before the crash, after the rejoin, or
    # both) and the detector - not a manual sweep - drained it.
    assert victim["reads_served"] > 0
    assert report["counters"]["detector_replicas_drained"] == 1


def test_serve_is_deterministic(small_report):
    again = run_serving(**SMALL)
    assert again == small_report


def test_serve_seed_changes_report(small_report):
    other = run_serving(**dict(SMALL, seed=8))
    assert other["seed"] == 8
    assert other != small_report
    # Different seed, same invariant.
    assert other["ok"] is True


def test_serve_overload_sheds_boundedly():
    report = run_serving(
        seed=17, duration=0.15, write_terminals=1,
        mixed_sessions=1, read_sessions=6, chaos=False,
        read_limit=1, queue_limit=2, queue_timeout=0.002,
        replica_cores=1,
    )
    admission = report["admission"]
    assert admission["rejects"] > 0
    assert admission["rejects"] == (
        admission["queue_full"] + admission["deadline"]
    )
    assert admission["shed"]["read"] > 0
    # Shedding keeps the system correct: every admitted read still
    # honoured its session token.
    assert report["ok"] is True
    assert report["reads"]["total"] > 0
