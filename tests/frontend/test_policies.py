"""Tests for replica routing policies (lag-aware balancing)."""

import pytest

from repro.frontend.policies import (
    LeastLagPolicy,
    PowerOfTwoChoicesPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.sim.rand import SeedSequence


class FakeReplica:
    def __init__(self, lag):
        self.lag_lsn = lag
        self.alive = True


class FakeHandle:
    def __init__(self, index, lag):
        self.index = index
        self.replica_id = "replica-%d" % index
        self.replica = FakeReplica(lag)


def handles(*lags):
    return [FakeHandle(i, lag) for i, lag in enumerate(lags)]


def test_round_robin_cycles():
    policy = RoundRobinPolicy()
    fleet = handles(0, 0, 0)
    picks = [policy.choose(fleet).index for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    assert policy.choose([]) is None


def test_round_robin_survives_shrinking_fleet():
    policy = RoundRobinPolicy()
    fleet = handles(0, 0, 0)
    policy.choose(fleet)
    policy.choose(fleet)
    # A replica drained: the cursor must still land in range.
    assert policy.choose(fleet[:1]).index == 0


def test_least_lag_picks_most_caught_up():
    policy = LeastLagPolicy()
    fleet = handles(500, 20, 90)
    assert policy.choose(fleet).index == 1
    # Ties break on the lower replica index (deterministic).
    assert policy.choose(handles(30, 30)).index == 0
    assert policy.choose([]) is None


def test_p2c_staleness_bound_filters():
    rng = SeedSequence(3).stream("p2c")
    policy = PowerOfTwoChoicesPolicy(rng, staleness_bound=100)
    # Everyone over the bound: bounce to the primary.
    assert policy.choose(handles(500, 900)) is None
    # Exactly one eligible: no sampling needed.
    assert policy.choose(handles(500, 40)).index == 1


def test_p2c_picks_lower_lag_of_two():
    rng = SeedSequence(3).stream("p2c")
    policy = PowerOfTwoChoicesPolicy(rng)
    fleet = handles(1000, 10, 2000, 10_000)
    picks = [policy.choose(fleet).replica.lag_lsn for _ in range(40)]
    # The sampled pair always resolves to its less-lagged member, so the
    # worst replica can never win over three others.
    assert 10_000 not in picks
    assert 10 in picks


def test_p2c_is_deterministic_per_seed():
    fleet = handles(5, 50, 500)

    def trace(seed):
        policy = PowerOfTwoChoicesPolicy(SeedSequence(seed).stream("p2c"))
        return [policy.choose(fleet).index for _ in range(20)]

    assert trace(7) == trace(7)


def test_make_policy():
    assert make_policy("round-robin").name == "round-robin"
    assert make_policy("least-lag").name == "least-lag"
    p2c = make_policy(
        "p2c", rng=SeedSequence(1).stream("x"), staleness_bound=64
    )
    assert p2c.staleness_bound == 64
    with pytest.raises(ValueError):
        make_policy("p2c")  # needs an rng
    with pytest.raises(ValueError):
        make_policy("random")
    with pytest.raises(ValueError):
        PowerOfTwoChoicesPolicy(SeedSequence(1).stream("x"), staleness_bound=-1)
