"""Tests for deterministic random streams and metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import Counter, LatencyRecorder, ThroughputMeter, geomean, summarize
from repro.sim.rand import Rng, SeedSequence, ZipfGenerator, nurand


def test_seed_sequence_streams_are_independent_and_reproducible():
    seeds = SeedSequence(42)
    a1 = seeds.stream("alpha")
    a2 = SeedSequence(42).stream("alpha")
    b = seeds.stream("beta")
    draws_a1 = [a1.random() for _ in range(5)]
    draws_a2 = [a2.random() for _ in range(5)]
    draws_b = [b.random() for _ in range(5)]
    assert draws_a1 == draws_a2
    assert draws_a1 != draws_b


def test_different_root_seeds_differ():
    s1 = SeedSequence(1).stream("x")
    s2 = SeedSequence(2).stream("x")
    assert [s1.random() for _ in range(3)] != [s2.random() for _ in range(3)]


def test_lognormal_around_median():
    rng = Rng(7)
    draws = sorted(rng.lognormal_around(10.0, 0.3) for _ in range(4001))
    median = draws[len(draws) // 2]
    assert 9.0 < median < 11.0
    assert all(d > 0 for d in draws)


def test_lognormal_rejects_nonpositive_median():
    with pytest.raises(ValueError):
        Rng(1).lognormal_around(0.0)


def test_zipf_is_skewed():
    rng = Rng(3)
    zipf = ZipfGenerator(1000, theta=0.99, rng=rng)
    draws = [zipf.next() for _ in range(20000)]
    assert all(0 <= d < 1000 for d in draws)
    top_share = sum(1 for d in draws if d < 10) / len(draws)
    assert top_share > 0.25  # heavy head


def test_zipf_theta_zero_is_uniformish():
    rng = Rng(3)
    zipf = ZipfGenerator(100, theta=0.0, rng=rng)
    draws = [zipf.next() for _ in range(20000)]
    top_share = sum(1 for d in draws if d < 10) / len(draws)
    assert 0.05 < top_share < 0.15


def test_nurand_in_range():
    rng = Rng(11)
    for _ in range(1000):
        v = nurand(rng, 255, 1, 3000, 123)
        assert 1 <= v <= 3000


def test_latency_recorder_percentiles():
    rec = LatencyRecorder()
    for i in range(1, 101):
        rec.record(float(i))
    assert rec.p50 == pytest.approx(50.5)
    assert rec.p99 == pytest.approx(99.01)
    assert rec.mean == pytest.approx(50.5)
    assert rec.maximum == 100.0
    assert rec.minimum == 1.0


def test_latency_recorder_empty():
    rec = LatencyRecorder()
    assert rec.p99 == 0.0
    assert rec.mean == 0.0


def test_latency_recorder_rejects_negative():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(-1.0)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=50)
def test_percentile_bounds_property(samples):
    rec = LatencyRecorder()
    for s in samples:
        rec.record(s)
    tol = 1e-9 * max(abs(rec.maximum), 1.0)  # float interpolation slack
    assert rec.minimum - tol <= rec.p50 <= rec.maximum + tol
    assert rec.p50 - tol <= rec.p95 <= rec.p99 + tol
    assert rec.p99 <= rec.maximum + tol


def test_throughput_meter():
    meter = ThroughputMeter()
    meter.start(0.0)
    for i in range(1, 11):
        meter.record(float(i), nbytes=1024 * 1024)
    assert meter.rate() == pytest.approx(1.0)
    assert meter.bandwidth_mb_s() == pytest.approx(1.0)


def test_throughput_meter_zero_elapsed():
    meter = ThroughputMeter()
    assert meter.rate() == 0.0
    meter.record(5.0)
    assert meter.rate() == 0.0  # single sample, no elapsed window


def test_counter():
    c = Counter()
    c.incr("hits")
    c.incr("hits", 4)
    assert c.get("hits") == 5
    assert c.get("misses") == 0
    assert c.as_dict() == {"hits": 5}


def test_summarize():
    s = summarize([1.0, 2.0, 3.0])
    assert s["count"] == 3.0
    assert s["mean"] == pytest.approx(2.0)


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=50))
@settings(max_examples=50)
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) <= g * (1 + 1e-9)
    assert g <= max(values) * (1 + 1e-9)
