"""Tests for device and network models, including calibration sanity."""

import pytest

from repro.sim.core import Environment
from repro.sim.devices import GB, KB, MS, US, PMemDevice, SsdDevice, StorageDevice
from repro.sim.metrics import LatencyRecorder
from repro.sim.network import RdmaFabric, RdmaVerb, RpcNetwork
from repro.sim.rand import Rng, SeedSequence
from repro.sim.resources import CpuPool


def run_collect(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


def make_env(name="test"):
    env = Environment()
    seeds = SeedSequence(1234)
    return env, seeds


def test_device_latency_includes_bandwidth_term():
    env, seeds = make_env()
    dev = StorageDevice(
        env,
        seeds.stream("dev"),
        "d",
        read_latency=10 * US,
        write_latency=10 * US,
        read_bandwidth=1 * GB,
        write_bandwidth=1 * GB,
        channels=1,
        jitter_sigma=0.0,
    )

    def do(env):
        small = yield from dev.read(0)
        large = yield from dev.read(1 * GB)
        return small, large

    small, large = run_collect(env, do(env))
    assert small == pytest.approx(10 * US)
    assert large == pytest.approx(1.0 + 10 * US)


def test_device_channels_queue():
    env, seeds = make_env()
    dev = StorageDevice(
        env,
        seeds.stream("dev"),
        "d",
        read_latency=1.0,
        write_latency=1.0,
        read_bandwidth=0,
        write_bandwidth=0,
        channels=2,
        jitter_sigma=0.0,
    )
    done = []

    def reader(env):
        yield from dev.read(0)
        done.append(env.now)

    for _ in range(4):
        env.process(reader(env))
    env.run()
    assert done == [1.0, 1.0, 2.0, 2.0]


def test_congestion_knee_stretches_service():
    env, seeds = make_env()
    dev = StorageDevice(
        env,
        seeds.stream("dev"),
        "d",
        read_latency=1.0,
        write_latency=1.0,
        read_bandwidth=0,
        write_bandwidth=0,
        channels=100,
        jitter_sigma=0.0,
        congestion_knee=2,
        congestion_slope=1.0,
    )
    latencies = {}

    def reader(env, name):
        lat = yield from dev.read(0)
        latencies[name] = lat

    def uncongested(env):
        yield from dev.read(0)

    # First: single reader, no congestion.
    p = env.process(reader(env, "alone"))
    env.run()
    # Then: six concurrent readers exceed the knee of 2.
    for i in range(6):
        env.process(reader(env, "c%d" % i))
    env.run()
    assert latencies["alone"] == pytest.approx(1.0)
    assert max(latencies.values()) > 1.5


def test_pmem_faster_than_ssd_for_4k_write():
    env, seeds = make_env()
    pmem = PMemDevice(env, seeds.stream("pmem"))
    ssd = SsdDevice(env, seeds.stream("ssd"))

    def do(env):
        p = yield from pmem.write(4 * KB)
        s = yield from ssd.write(4 * KB)
        return p, s

    p, s = run_collect(env, do(env))
    assert p < s
    assert s > 20 * US  # SSD durable write is tens of microseconds at least


def test_ssd_spikes_inflate_tail():
    env, seeds = make_env()
    ssd = SsdDevice(env, seeds.stream("ssd"))
    ssd.start_spike_process(period=0.010, duration=0.002, penalty=10.0)
    rec = LatencyRecorder()

    def writer(env):
        for _ in range(400):
            lat = yield from ssd.write(4 * KB)
            rec.record(lat)
            yield env.timeout(0.0005)

    proc = env.process(writer(env))
    env.run_until_event(proc)  # the spike process is a daemon; don't drain
    # Spikes should push P99 well above the median.
    assert rec.p99 > 3 * rec.p50


def test_rpc_call_charges_server_cpu():
    env, seeds = make_env()
    net = RpcNetwork(env, seeds.stream("net"), jitter_sigma=0.0, spike_probability=0.0)
    cpu = CpuPool(env, cores=1)

    def do(env):
        lat = yield from net.call(128, 128, server_cpu=cpu, server_cpu_seconds=50 * US)
        return lat

    lat = run_collect(env, do(env))
    assert cpu.busy_time == pytest.approx(50 * US)
    assert lat > 100 * US  # two one-way hops + kernel + server CPU


def test_rdma_verbs_do_not_touch_cpu():
    env, seeds = make_env()
    fabric = RdmaFabric(env, seeds.stream("rdma"), jitter_sigma=0.0)

    def do(env):
        lat = yield from fabric.read(64)
        return lat

    lat = run_collect(env, do(env))
    assert lat < 10 * US


def test_rdma_chain_single_doorbell():
    env, seeds = make_env()
    fabric = RdmaFabric(env, seeds.stream("rdma"), jitter_sigma=0.0)

    def chained(env):
        return (
            yield from fabric.post_chain(
                [RdmaVerb("write", 64), RdmaVerb("write", 8), RdmaVerb("read", 8)]
            )
        )

    def separate(env):
        total = 0.0
        for verb in [RdmaVerb("write", 64), RdmaVerb("write", 8), RdmaVerb("read", 8)]:
            total += yield from fabric.post(verb)
        return total

    t_chain = run_collect(env, chained(env))
    env2, seeds2 = make_env()
    fabric2 = RdmaFabric(env2, seeds2.stream("rdma"), jitter_sigma=0.0)

    def separate2(env):
        total = 0.0
        for verb in [RdmaVerb("write", 64), RdmaVerb("write", 8), RdmaVerb("read", 8)]:
            total += yield from fabric2.post(verb)
        return total

    t_sep = run_collect(env2, separate2(env2))
    assert t_chain < t_sep  # chaining saves two doorbells


def test_rdma_256kb_write_near_paper_figure():
    """Paper Section V-A: a 256 KB one-sided WRITE takes about 0.1 ms."""
    env, seeds = make_env()
    fabric = RdmaFabric(env, seeds.stream("rdma"), jitter_sigma=0.0)

    def do(env):
        return (yield from fabric.write(256 * KB))

    lat = run_collect(env, do(env))
    assert 0.05 * MS < lat < 0.2 * MS


def test_persistent_write_is_tens_of_microseconds():
    """Paper Section IV: AStore write latency ~20 us for small payloads."""
    env, seeds = make_env()
    fabric = RdmaFabric(env, seeds.stream("rdma"), jitter_sigma=0.0)

    def do(env):
        return (yield from fabric.persistent_write(512))

    lat = run_collect(env, do(env))
    assert 5 * US < lat < 50 * US


def test_rpc_spike_probability_zero_is_stable():
    env, seeds = make_env()
    net = RpcNetwork(env, seeds.stream("net"), jitter_sigma=0.0, spike_probability=0.0)

    def do(env):
        lats = []
        for _ in range(10):
            lat = yield from net.send(128)
            lats.append(lat)
        return lats

    lats = run_collect(env, do(env))
    assert max(lats) == pytest.approx(min(lats))


def test_invalid_rdma_verb_rejected():
    with pytest.raises(ValueError):
        RdmaVerb("atomic", 8)
    with pytest.raises(ValueError):
        RdmaVerb("write", -1)
