"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 2.5
    assert env.now == 2.5


def test_processes_interleave_in_time_order():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, "b", 2.0))
    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "c", 3.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abcde":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcde")


def test_process_return_value_propagates_through_yield_from():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return 42

    def outer(env):
        value = yield from inner(env)
        return value + 1

    p = env.process(outer(env))
    env.run()
    assert p.value == 43


def test_waiting_on_another_process():
    env = Environment()

    def worker(env):
        yield env.timeout(5.0)
        return "result"

    def waiter(env, worker_proc):
        value = yield worker_proc
        return (env.now, value)

    w = env.process(worker(env))
    p = env.process(waiter(env, w))
    env.run()
    assert p.value == (5.0, "result")


def test_waiting_on_already_finished_process():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        return "done"

    w = env.process(worker(env))
    env.run()

    def waiter(env):
        value = yield w
        return value

    p = env.process(waiter(env))
    env.run()
    assert p.value == "done"


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def boom(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def waiter(env, target):
        try:
            yield target
        except ValueError as exc:
            return "caught %s" % exc
        return "not caught"

    b = env.process(boom(env))
    p = env.process(waiter(env, b))
    env.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_raises_from_run():
    env = Environment()

    def boom(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(boom(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_succeed_value():
    env = Environment()
    evt = env.event()

    def trigger(env):
        yield env.timeout(3.0)
        evt.succeed("payload")

    def waiter(env):
        value = yield evt
        return (env.now, value)

    env.process(trigger(env))
    p = env.process(waiter(env))
    env.run()
    assert p.value == (3.0, "payload")


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_all_of_waits_for_all():
    env = Environment()

    def waiter(env):
        t1 = env.timeout(1.0, value="x")
        t2 = env.timeout(4.0, value="y")
        results = yield AllOf(env, [t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(waiter(env))
    env.run()
    assert p.value == (4.0, ["x", "y"])


def test_any_of_fires_on_first():
    env = Environment()

    def waiter(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(9.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, list(results.values()))

    p = env.process(waiter(env))
    env.run(until=20)
    assert p.value == (1.0, ["fast"])


def test_and_or_operators():
    env = Environment()

    def waiter(env):
        both = env.timeout(1.0) & env.timeout(2.0)
        yield both
        first = env.timeout(1.0) | env.timeout(5.0)
        yield first
        return env.now

    p = env.process(waiter(env))
    env.run()
    assert p.value == 3.0


def test_run_until_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_in_past_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_interrupt_wakes_sleeping_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            return "slept"
        except Interrupt as intr:
            return ("interrupted", intr.cause, env.now)

    def interrupter(env, target):
        yield env.timeout(2.0)
        target.interrupt("wake up")

    s = env.process(sleeper(env))
    env.process(interrupter(env, s))
    env.run()
    assert s.value == ("interrupted", "wake up", 2.0)


def test_interrupt_of_dead_process_is_noop():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)
        return "done"

    p = env.process(quick(env))
    env.run()
    p.interrupt("too late")
    env.run()
    assert p.value == "done"


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_empty_all_of_fires_immediately():
    env = Environment()

    def waiter(env):
        result = yield AllOf(env, [])
        return result

    p = env.process(waiter(env))
    env.run()
    assert p.value == {}


def test_nested_yield_from_three_deep():
    env = Environment()

    def level3(env):
        yield env.timeout(1.0)
        return 3

    def level2(env):
        v = yield from level3(env)
        yield env.timeout(1.0)
        return v + 2

    def level1(env):
        v = yield from level2(env)
        return v + 1

    p = env.process(level1(env))
    env.run()
    assert p.value == 6
    assert env.now == 2.0
