"""Kernel-semantics tests pinning the fast-path behaviour.

The same-tick trampoline, the inline process resume, the uncontended
resource grant, and the AllOf countdown are pure optimisations: this file
pins the externally observable semantics they must preserve — schedule
order for simultaneous events, interrupt races, ``with_timeout`` defuse
behaviour, linear AllOf fan-in work, and byte-identical same-seed reports.
"""

import json

import pytest

from repro.common import DeadlineExceededError
from repro.sim.core import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    Timeout,
    _FAST_BOUND,
    with_timeout,
)
from repro.sim.metrics import LatencyRecorder
from repro.sim.resources import Resource


# ---------------------------------------------------------------------------
# Same-tick ordering
# ---------------------------------------------------------------------------

def test_same_tick_schedule_order_preserved():
    env = Environment()
    order = []

    def recorder(env, tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    env.process(recorder(env, "a", 0.0))
    env.process(recorder(env, "b", 0.0))
    env.process(recorder(env, "c", 0.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_tick_heap_and_trampoline_merge_by_seq():
    """Zero-delay (trampoline) and positive-delay (heap) events landing on
    the same virtual time must still fire in schedule (seq) order."""
    env = Environment()
    order = []

    def at_one_via_heap(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    def at_one_via_trampoline(env, tag):
        yield env.timeout(1.0 - env.now)  # still heap: scheduled at t=0
        order.append(tag)
        yield env.timeout(0.0)  # trampoline entry at t=1.0
        order.append(tag + "'")

    env.process(at_one_via_heap(env, "h1"))
    env.process(at_one_via_trampoline(env, "t"))
    env.process(at_one_via_heap(env, "h2"))
    env.run()
    assert order == ["h1", "t", "h2", "t'"]


def test_trampoline_overflow_preserves_order():
    """Past _FAST_BOUND same-tick entries, scheduling overflows to the heap
    — order must stay exactly seq order across the boundary."""
    env = Environment()
    order = []

    def leaf(env, i):
        if False:
            yield
        order.append(i)

    n = _FAST_BOUND + 500
    for i in range(n):
        env.process(leaf(env, i))
    env.run()
    assert order == list(range(n))


def test_uncontended_grants_fifo_with_timeouts():
    """Grant events and zero-delay timeouts interleave in schedule order."""
    env = Environment()
    res = Resource(env, capacity=2)
    order = []

    def user(env, tag):
        req = res.request()
        yield req
        order.append("got-" + tag)
        yield env.timeout(0.0)
        res.release(req)
        order.append("rel-" + tag)

    env.process(user(env, "a"))
    env.process(user(env, "b"))
    env.process(user(env, "c"))
    env.run()
    assert order == ["got-a", "got-b", "rel-a", "rel-b", "got-c", "rel-c"]


# ---------------------------------------------------------------------------
# Interrupt races
# ---------------------------------------------------------------------------

def test_interrupt_of_process_completed_same_tick_is_dropped():
    env = Environment()

    def quick(env):
        yield env.timeout(0.1)
        return "done"

    def killer(env, proc):
        yield env.timeout(0.1)  # resumes after quick (later seq), same tick
        proc.interrupt("too late")

    p = env.process(quick(env))
    env.process(killer(env, p))
    env.run()  # must not raise: the dead-process interrupt is pre-defused
    assert p.value == "done"


def test_pending_flush_beats_same_tick_interrupt():
    """An interrupt scheduled at the same tick as the target's wakeup loses
    to the wakeup if the wakeup's event has the earlier sequence number."""
    env = Environment()
    got = []

    def killer(env):
        yield env.timeout(0.1)
        got.append("interrupting")
        sleeper_proc.interrupt("race")

    def sleeper(env):
        try:
            yield env.timeout(0.1)
            got.append("completed")
        except Interrupt as exc:
            got.append("interrupted:%s" % exc.cause)

    env.process(killer(env))  # spawned first: earlier timeout seq
    sleeper_proc = env.process(sleeper(env))
    env.run()
    # killer resumes first at t=0.1, but sleeper's own timeout (already
    # triggered, earlier seq than the interrupt's resume) flushes first.
    assert got == ["interrupting", "completed"]


def test_interrupt_wakes_waiter_and_detaches_target():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(10.0)
            return "overslept"
        except Interrupt as exc:
            return "interrupted:%s" % exc.cause

    def killer(env, p):
        yield env.timeout(0.5)
        p.interrupt("now")

    p = env.process(sleeper(env))
    env.process(killer(env, p))
    env.run()  # the detached 10s timeout fires with no waiters: harmless
    assert p.value == "interrupted:now"
    assert env.now == 10.0


# ---------------------------------------------------------------------------
# with_timeout defuse behaviour
# ---------------------------------------------------------------------------

def test_with_timeout_deadline_interrupt_defused():
    env = Environment()

    def slow(env):
        yield env.timeout(5.0)

    def caller(env):
        try:
            yield from with_timeout(env, slow(env), 1.0, "slow-op")
        except DeadlineExceededError:
            return "deadline"
        return "no-deadline"

    p = env.process(caller(env))
    env.run()  # interrupted target fails with Interrupt; must be defused
    assert p.value == "deadline"


def test_with_timeout_same_tick_completion_wins():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)
        return "payload"

    def caller(env):
        result = yield from with_timeout(env, quick(env), 1.0, "op")
        return result

    p = env.process(caller(env))
    env.run()
    # target completes at the deadline tick with the earlier seq: it wins.
    assert p.value == "payload"


def test_with_timeout_propagates_early_failure():
    env = Environment()

    def failing(env):
        yield env.timeout(0.5)
        raise RuntimeError("boom")

    def caller(env):
        try:
            yield from with_timeout(env, failing(env), 1.0, "op")
        except RuntimeError as exc:
            return "caught:%s" % exc
        return "no-failure"

    p = env.process(caller(env))
    env.run()
    assert p.value == "caught:boom"


# ---------------------------------------------------------------------------
# AllOf fan-in is linear
# ---------------------------------------------------------------------------

class _SpyEvent(Event):
    """Event that counts ``processed``-property reads (the O(n^2) rescan of
    the old AllOf implementation went through exactly this property)."""

    reads = 0

    @property
    def processed(self):
        _SpyEvent.reads += 1
        return self.callbacks is None


class _CountingAllOf(AllOf):
    __slots__ = ("checks",)

    def _init_state(self):
        self.checks = 0
        super()._init_state()

    def _check(self, event):
        self.checks += 1
        super()._check(event)


def test_allof_1k_events_linear_callback_work():
    env = Environment()
    n = 1000
    _SpyEvent.reads = 0
    events = [_SpyEvent(env) for _ in range(n)]
    condition = _CountingAllOf(env, events)
    waiter = {}

    def wait(env):
        waiter["result"] = yield condition

    env.process(wait(env))
    for i, event in enumerate(events):
        event.succeed(i)
    env.run()
    assert len(waiter["result"]) == n
    # Each constituent triggers exactly one O(1) check...
    assert condition.checks == n
    # ...and nothing rescans the full list through `processed` (the old
    # implementation performed ~n^2/2 such reads for this workload).
    assert _SpyEvent.reads <= 3 * n


def test_allof_failure_still_defuses_and_fails_fast():
    env = Environment()
    events = [Event(env) for _ in range(10)]
    condition = _CountingAllOf(env, events)
    result = {}

    def wait(env):
        try:
            yield condition
        except RuntimeError as exc:
            result["error"] = str(exc)

    env.process(wait(env))
    events[3].fail(RuntimeError("constituent failed"))
    for i, event in enumerate(events):
        if i != 3:
            event.succeed(i)
    env.run()
    assert result["error"] == "constituent failed"


# ---------------------------------------------------------------------------
# LatencyRecorder sorted-cache
# ---------------------------------------------------------------------------

def test_latency_recorder_cache_invalidated_by_record():
    rec = LatencyRecorder("x")
    for value in (3.0, 1.0, 2.0):
        rec.record(value)
    assert rec.p50 == 2.0  # populates the sorted cache
    rec.record(10.0)  # must invalidate it
    assert rec.maximum == 10.0
    assert rec.percentile(100) == 10.0
    summary = rec.summary()
    assert summary["count"] == 4.0
    assert summary["max"] == 10.0


def test_latency_recorder_direct_append_is_still_seen():
    rec = LatencyRecorder("x")
    rec.record(1.0)
    assert rec.p50 == 1.0
    rec.samples.append(5.0)  # bypasses record(): length check must catch it
    assert rec.maximum == 5.0
    assert rec.summary()["count"] == 2.0


def test_latency_recorder_summary_matches_per_call_percentiles():
    rec = LatencyRecorder("x")
    for value in (0.004, 0.001, 0.003, 0.009, 0.002, 0.007, 0.005):
        rec.record(value)
    summary = rec.summary()
    assert summary["p50"] == rec.percentile(50)
    assert summary["p95"] == rec.percentile(95)
    assert summary["p99"] == rec.percentile(99)
    assert summary["max"] == rec.maximum
    assert summary["mean"] == rec.mean


# ---------------------------------------------------------------------------
# Same-seed double-run determinism over a serve slice
# ---------------------------------------------------------------------------

def test_serve_same_seed_double_run_byte_identical():
    from repro.frontend.serve import run_serving

    kwargs = dict(
        seed=3, replicas=2, duration=0.1, write_terminals=1,
        mixed_sessions=1, read_sessions=2, chaos=False,
    )
    first = run_serving(**kwargs)
    second = run_serving(**kwargs)
    assert json.dumps(first, sort_keys=True) == json.dumps(second,
                                                           sort_keys=True)
