"""Edge-case tests for kernel utilities added for the daemon-heavy stack."""

import pytest

from repro.sim.core import AllOf, Environment, Event, SimulationError


def test_run_until_event_returns_value():
    env = Environment()

    def worker(env):
        yield env.timeout(3.0)
        return "payload"

    proc = env.process(worker(env))

    def daemon(env):
        while True:
            yield env.timeout(1.0)

    env.process(daemon(env))  # would make plain run() never terminate
    value = env.run_until_event(proc)
    assert value == "payload"
    assert env.now == 3.0


def test_run_until_event_raises_on_drained_queue():
    env = Environment()
    orphan = Event(env)  # never triggered, nothing scheduled
    with pytest.raises(SimulationError, match="drained"):
        env.run_until_event(orphan)


def test_run_until_event_propagates_failure():
    env = Environment()

    def boom(env):
        yield env.timeout(1.0)
        raise ValueError("kaboom")

    proc = env.process(boom(env))
    with pytest.raises(ValueError, match="kaboom"):
        env.run_until_event(proc)


def test_peek_and_step():
    env = Environment()
    env.timeout(5.0)
    assert env.peek() == 5.0
    env.step()
    assert env.now == 5.0
    assert env.peek() == float("inf")


def test_all_of_failure_defuses_and_propagates():
    env = Environment()

    def ok(env):
        yield env.timeout(1.0)

    def bad(env):
        yield env.timeout(2.0)
        raise RuntimeError("part failed")

    both = AllOf(env, [env.process(ok(env)), env.process(bad(env))])

    def waiter(env):
        try:
            yield both
        except RuntimeError as exc:
            return "caught %s" % exc
        return "no error"

    proc = env.process(waiter(env))
    env.run()
    assert proc.value == "caught part failed"


def test_fail_requires_exception():
    env = Environment()
    event = Event(env)
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = Event(env)
    with pytest.raises(SimulationError):
        _ = event.value
