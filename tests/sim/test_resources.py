"""Tests for Resource, PriorityResource, Store, CpuPool, Mutex."""

import pytest

from repro.sim.core import Environment
from repro.sim.resources import CpuPool, Mutex, PriorityResource, Resource, Store


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, name, hold):
        req = res.request()
        yield req
        order.append(("start", name, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(user(env, "a", 2.0))
    env.process(user(env, "b", 1.0))
    env.process(user(env, "c", 1.0))
    env.run()
    assert order == [("start", "a", 0.0), ("start", "b", 2.0), ("start", "c", 3.0)]


def test_resource_release_unheld_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    res.release(req)
    from repro.sim.core import SimulationError

    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_locked_helper_releases_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def inner_fail(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def proc(env):
        try:
            yield from res.locked(inner_fail(env))
        except ValueError:
            pass
        return res.count

    p = env.process(proc(env))
    env.run()
    assert p.value == 0


def test_cancelled_request_is_skipped():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    r2.cancel()
    res.release(r1)
    assert r3.triggered
    assert not r2.triggered


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(env, name, priority):
        req = res.request(priority=priority)
        yield req
        order.append(name)
        yield env.timeout(1.0)
        res.release(req)

    def spawn(env):
        # Occupy the resource first so later requests queue up.
        req = res.request(priority=0)
        yield req
        env.process(user(env, "low", 5))
        env.process(user(env, "high", 1))
        env.process(user(env, "mid", 3))
        yield env.timeout(1.0)
        res.release(req)

    env.process(spawn(env))
    env.run()
    assert order == ["high", "mid", "low"]


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")

    def getter(env):
        item = yield store.get()
        return item

    p = env.process(getter(env))
    env.run()
    assert p.value == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def getter(env):
        item = yield store.get()
        return (env.now, item)

    def putter(env):
        yield env.timeout(4.0)
        store.put("late")

    p = env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert p.value == (4.0, "late")


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.put(i)
    got = []

    def getter(env):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    env.process(getter(env))
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_get_nowait():
    env = Environment()
    store = Store(env)
    assert store.get_nowait() is None
    store.put(7)
    assert store.get_nowait() == 7
    assert len(store) == 0


def test_cpu_pool_serializes_beyond_cores():
    env = Environment()
    pool = CpuPool(env, cores=2)
    finish_times = []

    def job(env):
        yield from pool.consume(1.0)
        finish_times.append(env.now)

    for _ in range(4):
        env.process(job(env))
    env.run()
    # 2 cores, 4 unit jobs: finish at 1,1,2,2.
    assert finish_times == [1.0, 1.0, 2.0, 2.0]
    assert pool.busy_time == 4.0
    assert pool.utilization(2.0) == 1.0


def test_cpu_pool_rejects_negative_time():
    env = Environment()
    pool = CpuPool(env, cores=1)

    def job(env):
        yield from pool.consume(-1.0)

    env.process(job(env))
    with pytest.raises(ValueError):
        env.run()


def test_mutex_is_exclusive():
    env = Environment()
    mutex = Mutex(env)
    active = []
    max_active = []

    def critical(env):
        req = mutex.request()
        yield req
        active.append(1)
        max_active.append(len(active))
        yield env.timeout(1.0)
        active.pop()
        mutex.release(req)

    for _ in range(5):
        env.process(critical(env))
    env.run()
    assert max(max_active) == 1


def test_store_put_many_uncontended_extends_in_order():
    env = Environment()
    store = Store(env)
    store.put_many([1, 2, 3])
    store.put_many((4, 5))
    got = []

    def getter(env):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    env.process(getter(env))
    env.run()
    assert got == [1, 2, 3, 4, 5]


def test_store_put_many_wakes_waiting_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def getter(env, name):
        item = yield store.get()
        got.append((name, item))

    env.process(getter(env, "a"))
    env.process(getter(env, "b"))

    def putter(env):
        yield env.timeout(1.0)
        store.put_many([10, 20, 30])

    env.process(putter(env))
    env.run()
    assert got == [("a", 10), ("b", 20)]
    assert store.get_nowait() == 30


def test_store_put_many_skips_cancelled_getters():
    env = Environment()
    store = Store(env)
    first = store.get()
    second = store.get()
    first.cancelled = True
    store.put_many(["x"])
    env.run()
    assert second.value == "x"


def test_store_get_upto_takes_queued_batch():
    env = Environment()
    store = Store(env)
    store.put_many([1, 2, 3, 4, 5])

    def getter(env):
        batch = yield store.get_upto(3)
        rest = yield store.get_upto(10)
        return batch, rest

    p = env.process(getter(env))
    env.run()
    assert p.value == ([1, 2, 3], [4, 5])
    assert len(store) == 0


def test_store_get_upto_blocks_then_gets_single_item_list():
    env = Environment()
    store = Store(env)

    def getter(env):
        batch = yield store.get_upto(8)
        return (env.now, batch)

    def putter(env):
        yield env.timeout(2.0)
        store.put("solo")

    p = env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert p.value == (2.0, ["solo"])


def test_store_get_upto_woken_by_put_many():
    env = Environment()
    store = Store(env)

    def getter(env):
        batch = yield store.get_upto(4)
        return batch

    def putter(env):
        yield env.timeout(1.0)
        store.put_many(["a", "b"])

    p = env.process(getter(env))
    env.process(putter(env))
    env.run()
    # A parked batched getter is woken with one item; the rest stay queued.
    assert p.value == ["a"]
    assert store.get_nowait() == "b"


def test_store_get_upto_rejects_bad_limit():
    env = Environment()
    store = Store(env)
    with pytest.raises(ValueError):
        store.get_upto(0)
