"""Tests for the sharded multi-primary subsystem (repro.shard)."""
