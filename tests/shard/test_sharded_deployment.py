"""Sharded deployment API tests: the with_shards builder, vector-token
read-your-writes through the proxy, scatter-gather merging, and
same-seed determinism of the sharded TPC-C driver."""

import pytest

from repro.engine.codec import INT, Column, Schema
from repro.harness.deployment import DeploymentSpec
from repro.shard import ShardKeySpec
from repro.workloads import TpccConfig, run_tpcc_sharded


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


def test_with_shards_validation():
    with pytest.raises(ValueError):
        DeploymentSpec.stock(seed=3).with_shards(0).build()


def test_with_shards_one_is_the_unsharded_spec():
    spec = DeploymentSpec.astore_ebp(seed=5, astore_servers=3)
    # n=1 is a no-op on the spec itself: same dataclass value, so the
    # resulting deployment is built from identical configuration.
    assert spec.with_shards(1) == spec
    dep = spec.with_shards(1).build()
    assert len(dep.shards) == 1
    assert dep.engines[0] is dep.engine
    # The coordinator session still works at n=1 (no 2PC ever fires).
    dep.start()
    session = dep.shard_session()
    session.create_table(
        "kv", Schema([Column("k", INT()), Column("v", INT())]), ["k"]
    )
    txn = session.begin()

    def work():
        yield from session.insert(txn, "kv", [1, 10])
        yield from session.commit(txn)

    run(dep, work())
    assert dep.coordinator.counters()["two_phase_commits"] == 0
    assert run(dep, dep.engine.read_row(None, "kv", (1,))) == [1, 10]


def test_sharded_accessors():
    dep = DeploymentSpec.stock(seed=9).with_shards(3).build()
    assert dep.config.shards == 3
    assert len(dep.shards) == 3
    assert len(dep.engines) == 3
    assert dep.engines[0] is dep.engine
    assert dep.shardmap.shards == 3
    assert dep.coordinator is not None
    # Each shard is a full vertical stack with its own log.
    logs = {id(stack.engine.log) for stack in dep.shards}
    assert len(logs) == 3


def build_sharded_frontend(seed=29):
    spec = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=3)
        .with_shards(2)
        .with_replicas(2)
    )
    dep = spec.build()
    dep.start()
    session = dep.shard_session()
    session.create_table(
        "kv", Schema([Column("k", INT()), Column("v", INT())]), ["k"]
    )
    dep.shardmap.set_table("kv", ShardKeySpec(column_pos=0))
    for stack in dep.shards:
        stack.fleet.sync_catalogs()
    return dep


def test_vector_token_read_your_writes_across_shards():
    dep = build_sharded_frontend()
    client = dep.frontend_session("client")
    # One transaction writing both shards: k=0 -> shard 0, k=1 -> shard 1.
    run(dep, client.execute("INSERT INTO kv VALUES (0, 100), (1, 101)"))
    assert dep.coordinator.counters()["two_phase_commits"] == 1
    # The commit advanced BOTH components of the session token.
    assert client.token.get(0) > 0
    assert client.token.get(1) > 0
    # Immediate reads - replicas may still be applying - must observe the
    # writes on both shards: the per-shard token component holds each
    # read until its replica caught up (or bounces it to the primary).
    assert run(dep, client.read_row("kv", (0,))) == [0, 100]
    assert run(dep, client.read_row("kv", (1,))) == [1, 101]
    # After the fleets drain, the same reads serve from replicas and are
    # still fresh: zero stale reads.
    dep.run_for(0.5)
    assert run(dep, client.read_row("kv", (0,))) == [0, 100]
    assert client.last_route != "primary"
    assert run(dep, client.read_row("kv", (1,))) == [1, 101]
    assert client.last_route != "primary"


def test_scatter_select_merges_across_shards():
    dep = build_sharded_frontend(seed=31)
    client = dep.frontend_session("client")
    values = ", ".join("(%d, %d)" % (k, k * 10) for k in range(8))
    run(dep, client.execute("INSERT INTO kv VALUES %s" % values))

    result = run(dep, client.execute("SELECT COUNT(*), SUM(v) FROM kv"))
    assert result.rows == [(8, sum(k * 10 for k in range(8)))]

    result = run(
        dep, client.execute("SELECT MIN(v), MAX(v) FROM kv WHERE k >= 2")
    )
    assert result.rows == [(20, 70)]

    # Plain scatter re-applies ORDER BY and LIMIT globally.
    result = run(
        dep,
        client.execute("SELECT k, v FROM kv ORDER BY k DESC LIMIT 3"),
    )
    assert result.rows == [(7, 70), (6, 60), (5, 50)]

    assert dep.frontend.scatter_selects >= 3

    # AVG / DISTINCT aggregates are not decomposable from finalized
    # per-shard values; the scatter ships pre-finalize accumulator
    # states instead (sum+count, distinct value sets) and merges them
    # globally - the answer matches one engine holding every row.
    result = run(dep, client.execute("SELECT AVG(v) FROM kv"))
    assert result.rows == [(35.0,)]  # mean of 0,10,...,70
    result = run(dep, client.execute("SELECT COUNT(DISTINCT v) FROM kv"))
    assert result.rows == [(8,)]
    result = run(dep, client.execute(
        "SELECT COUNT(DISTINCT v) AS dv, AVG(v) AS mean FROM kv WHERE k >= 2"
    ))
    assert result.rows == [(6, 45.0)]

    # Single-shard aggregates are unaffected.
    result = run(dep, client.execute("SELECT AVG(v) FROM kv WHERE k = 4"))
    assert result.rows == [(40,)]


def test_prepared_statement_routes_by_bound_parameter():
    dep = build_sharded_frontend(seed=37)
    client = dep.frontend_session("client")
    values = ", ".join("(%d, %d)" % (k, k + 200) for k in range(4))
    run(dep, client.execute("INSERT INTO kv VALUES %s" % values))

    prepared = client.prepare("SELECT v FROM kv WHERE k = ?")
    for k in range(4):
        result = run(dep, prepared.execute(k))
        assert result.rows == [(k + 200,)]
    # Every execution pinned one shard: no scatter happened.
    assert dep.frontend.scatter_selects == 0


def sharded_tpcc_report(seed):
    config = TpccConfig(
        warehouses=4, districts_per_warehouse=2, customers_per_district=6,
        items=20, remote_item_prob=0.2,
    )
    dep = DeploymentSpec.astore_ebp(
        seed=seed, astore_servers=3).with_shards(2).build()
    dep.start()
    tps, latency, terminals = run_tpcc_sharded(
        dep, config, clients=4, duration=1.0
    )
    return {
        "tps": tps,
        "committed": sum(t.committed for t in terminals),
        "aborted": sum(t.aborted for t in terminals),
        "coordinator": dep.coordinator.counters(),
        "virtual_end": dep.env.now,
    }


def test_sharded_tpcc_is_deterministic_per_seed():
    first = sharded_tpcc_report(seed=41)
    second = sharded_tpcc_report(seed=41)
    assert first == second
    assert first["committed"] > 0
    assert first["coordinator"]["two_phase_commits"] > 0
