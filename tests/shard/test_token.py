"""Unit tests for the per-shard commit-LSN vector token."""

import pytest

from repro.shard import ShardVectorToken


def test_starts_at_zero():
    token = ShardVectorToken(3)
    assert token.shards == 3
    assert token.lsns == [0, 0, 0]
    assert token.max_lsn() == 0
    assert token.as_dict() == {}


def test_note_is_monotone():
    token = ShardVectorToken(2)
    token.note(0, 10)
    token.note(0, 5)  # must not move backwards
    token.note(1, 7)
    assert token.get(0) == 10
    assert token.get(1) == 7
    assert token.max_lsn() == 10
    assert token.as_dict() == {0: 10, 1: 7}


def test_note_map():
    token = ShardVectorToken(3)
    token.note_map({0: 4, 2: 9})
    token.note_map({0: 2, 1: 1})  # shard 0 stays at 4
    assert token.lsns == [4, 1, 9]


def test_merge_is_componentwise_max():
    a = ShardVectorToken(lsns=[5, 1, 8])
    b = ShardVectorToken(lsns=[3, 7, 8])
    assert a.merge(b) is a
    assert a.lsns == [5, 7, 8]
    # The merged-from token is untouched.
    assert b.lsns == [3, 7, 8]


def test_merge_rejects_width_mismatch():
    with pytest.raises(ValueError):
        ShardVectorToken(2).merge(ShardVectorToken(3))


def test_covered_by():
    token = ShardVectorToken(lsns=[5, 0, 8])
    assert token.covered_by([5, 0, 8])
    assert token.covered_by([9, 9, 9])
    assert not token.covered_by([4, 0, 8])
    assert not token.covered_by([5, 0, 7])
    with pytest.raises(ValueError):
        token.covered_by([5, 0])


def test_copy_and_eq():
    token = ShardVectorToken(lsns=[1, 2])
    clone = token.copy()
    assert clone == token
    clone.note(0, 99)
    assert clone != token
    assert token.lsns == [1, 2]


def test_single_shard_vector_is_the_scalar():
    token = ShardVectorToken(1)
    token.note(0, 42)
    assert token.max_lsn() == 42
    assert token.get(0) == 42


def test_validation():
    with pytest.raises(ValueError):
        ShardVectorToken(0)
