"""Unit tests for key->shard routing and statement classification."""

from zlib import crc32

import pytest

from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.harness.deployment import Deployment, DeploymentConfig
from repro.query import parse
from repro.shard import ShardKeySpec, ShardMap


@pytest.fixture(scope="module")
def catalog():
    dep = Deployment(DeploymentConfig.stock())
    dep.engine.create_table(
        "kv",
        Schema([Column("k", INT()), Column("v", INT()),
                Column("tag", VARCHAR(8))]),
        ["k"],
    )
    dep.engine.create_table(
        "ref",
        Schema([Column("r", INT()), Column("x", INT())]),
        ["r"],
    )
    return dep.engine.catalog


def test_int_keys_route_by_modulo():
    shardmap = ShardMap(4)
    assert shardmap.shard_of("kv", (7,)) == 3
    assert shardmap.shard_of("kv", (8,)) == 0
    assert [shardmap.shard_of("kv", (k,)) for k in range(4)] == [0, 1, 2, 3]


def test_string_keys_route_by_crc32_not_hash():
    shardmap = ShardMap(4)
    expected = crc32(b"alpha") % 4
    assert shardmap.shard_of("kv", ("alpha",)) == expected
    # Stable across ShardMap instances (Python hash() would not be).
    assert ShardMap(4).shard_of("kv", ("alpha",)) == expected


def test_extractor_overrides_column():
    shardmap = ShardMap(2)
    shardmap.set_table("kv", ShardKeySpec(extractor=lambda key: key[0] % 10))
    assert shardmap.shard_of("kv", (23,)) == 3 % 2
    assert shardmap.shard_of("kv", (40,)) == 0


def test_replicated_tables_broadcast_writes_read_locally():
    shardmap = ShardMap(3)
    shardmap.set_replicated("kv")
    assert shardmap.shard_of("kv", (5,)) is None
    assert shardmap.write_shards("kv", (5,)) == [0, 1, 2]
    assert shardmap.read_shard_of("kv", (5,), home=2) == 2


def test_column_pos_selects_key_component():
    shardmap = ShardMap(2)
    shardmap.set_table("kv", ShardKeySpec(column_pos=0))
    assert shardmap.shard_of("kv", (9,)) == 1
    assert shardmap.write_shards("kv", (9,)) == [1]


def select_shards(shardmap, catalog, sql):
    return shardmap.shards_for_select(parse(sql), catalog)


def dml_shards(shardmap, catalog, sql):
    return shardmap.shards_for_dml(parse(sql), catalog)


def test_select_equality_pins_one_shard(catalog):
    shardmap = ShardMap(4)
    assert select_shards(shardmap, catalog,
                         "SELECT v FROM kv WHERE k = 7") == {3}


def test_select_in_list_enumerates(catalog):
    shardmap = ShardMap(4)
    assert select_shards(
        shardmap, catalog, "SELECT v FROM kv WHERE k IN (1, 2, 5)"
    ) == {1, 2}


def test_select_small_between_enumerates(catalog):
    shardmap = ShardMap(4)
    assert select_shards(
        shardmap, catalog, "SELECT v FROM kv WHERE k BETWEEN 1 AND 2"
    ) == {1, 2}


def test_select_wide_between_scatters(catalog):
    shardmap = ShardMap(4)
    assert select_shards(
        shardmap, catalog, "SELECT v FROM kv WHERE k BETWEEN 0 AND 1000"
    ) == {0, 1, 2, 3}


def test_select_non_shard_predicate_scatters(catalog):
    shardmap = ShardMap(4)
    assert select_shards(
        shardmap, catalog, "SELECT v FROM kv WHERE v = 3"
    ) == {0, 1, 2, 3}


def test_select_and_narrows_or_unions(catalog):
    shardmap = ShardMap(4)
    assert select_shards(
        shardmap, catalog, "SELECT v FROM kv WHERE k = 1 AND v = 2"
    ) == {1}
    assert select_shards(
        shardmap, catalog, "SELECT v FROM kv WHERE k = 1 OR k = 2"
    ) == {1, 2}


def test_select_replicated_reads_shard_zero(catalog):
    shardmap = ShardMap(4)
    shardmap.set_replicated("kv")
    assert select_shards(shardmap, catalog, "SELECT v FROM kv") == {0}


def test_insert_routes_by_key_values(catalog):
    shardmap = ShardMap(4)
    assert dml_shards(
        shardmap, catalog, "INSERT INTO kv VALUES (5, 1, 'a')"
    ) == {1}
    assert dml_shards(
        shardmap, catalog,
        "INSERT INTO kv VALUES (4, 1, 'a'), (6, 1, 'b')"
    ) == {0, 2}


def test_update_delete_classified_by_where(catalog):
    shardmap = ShardMap(4)
    assert dml_shards(
        shardmap, catalog, "UPDATE kv SET v = 1 WHERE k = 3"
    ) == {3}
    assert dml_shards(
        shardmap, catalog, "DELETE FROM kv WHERE k IN (0, 4)"
    ) == {0}
    assert dml_shards(
        shardmap, catalog, "UPDATE kv SET v = 1 WHERE v = 9"
    ) == {0, 1, 2, 3}


def test_single_shard_map_short_circuits(catalog):
    shardmap = ShardMap(1)
    assert select_shards(
        shardmap, catalog, "SELECT v FROM kv WHERE k = 7"
    ) == {0}
    assert dml_shards(
        shardmap, catalog, "UPDATE kv SET v = 1 WHERE k = 7"
    ) == {0}


def test_validation():
    with pytest.raises(ValueError):
        ShardMap(0)
