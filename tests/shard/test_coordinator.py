"""2PC coordinator tests: the crash-point matrix and in-doubt recovery.

Every test drives a cross-shard transaction into a specific protocol
instant via the coordinator's failpoints, then checks the presumed-abort
contract: without a durable decision the transaction vanishes; with one
it commits, no matter which side crashed or in which order the shards
recover.
"""

import pytest

from repro.common import TransactionAborted
from repro.engine.codec import INT, Column, Schema
from repro.harness.deployment import DeploymentSpec
from repro.shard import InDoubtTransaction, ShardKeySpec


def build(shards=2, seed=17):
    dep = DeploymentSpec.stock(seed=seed).with_shards(shards).build()
    dep.start()
    session = dep.shard_session()
    session.create_table(
        "kv", Schema([Column("k", INT()), Column("v", INT())]), ["k"]
    )
    dep.shardmap.set_table("kv", ShardKeySpec(column_pos=0))
    return dep, session


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


def commit_keys(session, txn, keys):
    for k in keys:
        yield from session.insert(txn, "kv", [k, k + 100])
    yield from session.commit(txn)


def read(dep, session, k):
    return run(dep, session.read_row(None, "kv", (k,)))


def test_single_shard_statements_skip_2pc():
    dep, session = build()
    txn = session.begin()
    run(dep, commit_keys(session, txn, [0, 2]))  # both on shard 0
    counters = dep.coordinator.counters()
    assert counters["two_phase_commits"] == 0
    assert counters["single_shard_commits"] == 1
    assert read(dep, session, 0) == [0, 100]
    assert txn.status == "committed"
    assert set(txn.commit_lsns) == {0}


def test_read_only_remote_participant_skips_2pc():
    dep, session = build()
    txn = session.begin()
    run(dep, commit_keys(session, txn, [1]))  # seed shard 1

    txn2 = session.begin()

    def work():
        yield from session.read_row(txn2, "kv", (1,), for_update=True)
        yield from session.insert(txn2, "kv", [0, 7])
        yield from session.commit(txn2)

    run(dep, work())
    counters = dep.coordinator.counters()
    assert counters["two_phase_commits"] == 0
    assert counters["single_shard_commits"] == 2


def test_cross_shard_commit_runs_2pc_atomically():
    dep, session = build()
    txn = session.begin()
    run(dep, commit_keys(session, txn, [0, 1]))
    counters = dep.coordinator.counters()
    assert counters["two_phase_commits"] == 1
    assert counters["unresolved_in_doubt"] == 0
    assert read(dep, session, 0) == [0, 100]
    assert read(dep, session, 1) == [1, 101]
    assert txn.status == "committed"
    # The vector-token feed: one durable LSN per participant shard.
    assert set(txn.commit_lsns) == {0, 1}


@pytest.mark.parametrize("point", [
    "before_prepare_all", "after_prepare_all", "before_decision",
])
def test_coordinator_crash_without_decision_presumes_abort(point):
    dep, session = build()
    dep.coordinator.arm_failpoint(point)
    txn = session.begin()
    with pytest.raises(TransactionAborted) as err:
        run(dep, commit_keys(session, txn, [0, 1]))
    # No durable decision anywhere: this must NOT surface as in-doubt.
    assert not isinstance(err.value, InDoubtTransaction)
    assert dep.engines[0].crashed
    run(dep, dep.coordinator.recover_shard(0))
    assert read(dep, session, 0) is None
    assert read(dep, session, 1) is None
    counters = dep.coordinator.counters()
    assert counters["unresolved_in_doubt"] == 0
    assert counters["pending_decided"] == 0


def test_participant_in_doubt_commits_from_durable_prepare_marker():
    dep, session = build()
    dep.coordinator.arm_failpoint("participant_prepared", 1)
    txn = session.begin()
    # Shard 1 dies right after its prepare is durable.  The coordinator
    # (shard 0, still up) holds an affirmative vote, so it decides
    # commit; the transaction is in doubt only on the dead participant.
    with pytest.raises(InDoubtTransaction):
        run(dep, commit_keys(session, txn, [0, 1]))
    assert txn.status == "decided"
    assert dep.engines[1].crashed
    run(dep, dep.coordinator.recover_shard(1))
    assert txn.status == "committed"
    assert read(dep, session, 0) == [0, 100]
    assert read(dep, session, 1) == [1, 101]
    counters = dep.coordinator.counters()
    assert counters["in_doubt_commits"] >= 1
    assert counters["unresolved_in_doubt"] == 0
    assert counters["pending_decided"] == 0


def test_participant_down_at_prepare_presumes_abort():
    dep, session = build()
    txn = session.begin()

    def work():
        yield from session.insert(txn, "kv", [0, 1])
        yield from session.insert(txn, "kv", [1, 2])
        dep.engines[1].crash()
        yield from session.commit(txn)

    # The participant never voted: no prepare marker, no decision.
    with pytest.raises(TransactionAborted) as err:
        run(dep, work())
    assert not isinstance(err.value, InDoubtTransaction)
    run(dep, dep.coordinator.recover_shard(1))
    assert read(dep, session, 0) is None
    assert read(dep, session, 1) is None
    counters = dep.coordinator.counters()
    assert counters["presumed_aborts"] == 1
    assert counters["unresolved_in_doubt"] == 0


def test_coordinator_crash_after_decision_commits_at_recovery():
    dep, session = build()
    dep.coordinator.arm_failpoint("after_decision")
    txn = session.begin()
    with pytest.raises(InDoubtTransaction):
        run(dep, commit_keys(session, txn, [0, 1]))
    assert txn.status == "decided"
    # Decided transactions are not abortable: rollback is a no-op.
    run(dep, session.rollback(txn))
    assert txn.status == "decided"
    run(dep, dep.coordinator.recover_shard(0))
    assert txn.status == "committed"
    assert read(dep, session, 0) == [0, 100]
    assert read(dep, session, 1) == [1, 101]
    counters = dep.coordinator.counters()
    assert counters["unresolved_in_doubt"] == 0
    assert counters["pending_decided"] == 0
    assert counters["in_doubt_commits"] >= 1


def test_participant_recovers_before_coordinator_via_decision_harvest():
    dep, session = build()
    dep.coordinator.arm_failpoint("after_decision")
    txn = session.begin()
    with pytest.raises(InDoubtTransaction):
        run(dep, commit_keys(session, txn, [0, 1]))
    # Both sides go down before phase 2 reaches shard 1.
    dep.engines[1].crash()
    # Participant first: its in-doubt prepare must resolve by harvesting
    # the durable decision marker from the (still crashed) coordinator.
    run(dep, dep.coordinator.recover_shard(1))
    run(dep, dep.coordinator.recover_shard(0))
    assert read(dep, session, 0) == [0, 100]
    assert read(dep, session, 1) == [1, 101]
    counters = dep.coordinator.counters()
    assert counters["unresolved_in_doubt"] == 0
    assert counters["pending_decided"] == 0


def test_explicit_rollback_aborts_all_parts():
    dep, session = build()
    txn = session.begin()

    def work():
        yield from session.insert(txn, "kv", [0, 1])
        yield from session.insert(txn, "kv", [1, 2])
        yield from session.rollback(txn)

    run(dep, work())
    assert txn.status == "aborted"
    assert read(dep, session, 0) is None
    assert read(dep, session, 1) is None
    assert dep.coordinator.counters()["aborts"] == 1


def test_in_doubt_is_a_transaction_aborted():
    # Existing retry loops treat unknown outcomes as aborts; ledgers
    # distinguish them via txn.status == "decided".
    assert issubclass(InDoubtTransaction, TransactionAborted)


def test_replicated_table_broadcasts_and_reads_locally():
    dep, session = build()
    session.create_table(
        "ref", Schema([Column("r", INT()), Column("x", INT())]), ["r"]
    )
    dep.shardmap.set_replicated("ref")
    txn = session.begin()

    def work():
        yield from session.insert(txn, "ref", [1, 42])
        yield from session.commit(txn)

    run(dep, work())
    # Present on every shard without routing.
    for shard, engine in enumerate(dep.engines):
        row = run(dep, engine.read_row(None, "ref", (1,)))
        assert row == [1, 42], "shard %d" % shard
