"""Distributed robustness tests: global deadlock detection, the commit
fence, scatter-read atomicity, partitions, and proxy write retries.

The two headline regressions are encoded as off/on pairs: with the
robustness mechanism disabled (PR 6 semantics) the pathology is
demonstrably present - cross-shard deadlocks stall to the 2 s lock-wait
timeout, scatter reads observe torn 2PC commits - and with it enabled
the same workload resolves in milliseconds / observes atomically.
"""

import pytest

from repro.common import TransactionAborted
from repro.engine.codec import INT, Column, Schema
from repro.frontend.proxy import SqlProxy
from repro.harness.chaos import ChaosEvent, ChaosInjector, ChaosSchedule
from repro.harness.deployment import DeploymentSpec
from repro.shard import (
    CommitFence,
    FenceTimeout,
    InDoubtTransaction,
    ShardKeySpec,
)
from repro.sim.core import AllOf, Environment


def build(shards=2, seed=17, **robustness):
    spec = DeploymentSpec.stock(seed=seed).with_shards(shards)
    if robustness:
        spec = spec.with_robustness(**robustness)
    dep = spec.build()
    dep.start()
    session = dep.shard_session()
    session.create_table(
        "kv", Schema([Column("k", INT()), Column("v", INT())]), ["k"]
    )
    dep.shardmap.set_table("kv", ShardKeySpec(column_pos=0))
    return dep, session


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


def seed_rows(dep, session, keys):
    def gen():
        txn = session.begin()
        for k in keys:
            yield from session.insert(txn, "kv", [k, 0])
        yield from session.commit(txn)

    run(dep, gen())


# ----------------------------------------------------------------------
# CommitFence unit behaviour
# ----------------------------------------------------------------------
def test_fence_uncontended_is_zero_yield():
    env = Environment()
    fence = CommitFence(env)

    def reader():
        yield from fence.acquire_read()
        fence.release_read()

    def writer():
        yield from fence.acquire_write()
        fence.release_write()

    for gen in (reader, writer):
        proc = env.process(gen())
        env.run_until_event(proc)
        assert env.now == 0.0
    assert fence.counters()["reader_waits"] == 0
    assert fence.counters()["writer_waits"] == 0


def test_fence_reader_waits_out_writer():
    env = Environment()
    fence = CommitFence(env)
    order = []

    def writer():
        yield from fence.acquire_write()
        yield env.timeout(0.1)
        fence.release_write()
        order.append(("w-done", env.now))

    def reader():
        yield env.timeout(0.01)
        yield from fence.acquire_read()
        order.append(("r-in", env.now))
        fence.release_read()

    procs = [env.process(writer()), env.process(reader())]
    env.run_until_event(AllOf(env, procs))
    assert order == [("w-done", 0.1), ("r-in", 0.1)]
    assert fence.counters()["reader_waits"] == 1


def test_fence_writer_waits_out_reader_and_blocks_new_readers():
    env = Environment()
    fence = CommitFence(env)
    order = []

    def reader_one():
        yield from fence.acquire_read()
        yield env.timeout(0.1)
        fence.release_read()

    def writer():
        yield env.timeout(0.01)
        yield from fence.acquire_write()
        order.append(("w-in", env.now))
        yield env.timeout(0.05)
        fence.release_write()

    def reader_two():
        # Arrives while the writer is *pending*: must queue behind it
        # (writer preference) even though a reader is currently inside.
        yield env.timeout(0.02)
        yield from fence.acquire_read()
        order.append(("r2-in", env.now))
        fence.release_read()

    procs = [env.process(g()) for g in (reader_one, writer, reader_two)]
    env.run_until_event(AllOf(env, procs))
    assert order == [("w-in", 0.1), ("r2-in", pytest.approx(0.15))]


def test_fence_reader_timeout_raises():
    env = Environment()
    fence = CommitFence(env)
    outcome = []

    def writer():
        yield from fence.acquire_write()
        # Never releases within the reader's patience.
        yield env.timeout(1.0)
        fence.release_write()

    def reader():
        yield env.timeout(0.01)
        try:
            yield from fence.acquire_read(max_wait=0.1)
        except FenceTimeout:
            outcome.append(env.now)

    procs = [env.process(writer()), env.process(reader())]
    env.run_until_event(AllOf(env, procs))
    assert outcome == [pytest.approx(0.11)]
    assert fence.counters()["reader_timeouts"] == 1


# ----------------------------------------------------------------------
# Global deadlock detection (the cyclic-write regression pair)
# ----------------------------------------------------------------------
def cyclic_writers(dep, session, results):
    """Two transactions locking (0 -> 1) and (1 -> 0): a cross-shard
    cycle invisible to each engine's local refusal."""

    def writer(first, second, idx, stagger):
        txn = session.begin()
        try:
            yield from session.update(txn, "kv", (first,), {"v": idx})
            yield dep.env.timeout(stagger)
            yield from session.update(txn, "kv", (second,), {"v": idx})
            yield from session.commit(txn)
            results[idx] = "committed"
        except TransactionAborted:
            yield from session.rollback(txn)
            results[idx] = "aborted"

    return [
        dep.env.process(writer(0, 1, 0, 0.02)),
        dep.env.process(writer(1, 0, 1, 0.02)),
    ]


def test_cross_shard_deadlock_stalls_without_detector():
    dep, session = build(deadlock_detection=False)
    seed_rows(dep, session, [0, 1])
    start = dep.env.now
    results = {}
    procs = cyclic_writers(dep, session, results)
    dep.env.run_until_event(AllOf(dep.env, procs))
    elapsed = dep.env.now - start
    # Only the 2 s lock-wait timeout resolves the cycle.
    assert elapsed >= 2.0
    assert sorted(results.values()) == ["aborted", "committed"] or \
        sorted(results.values()) == ["aborted", "aborted"]


def test_cross_shard_deadlock_resolved_by_detector():
    dep, session = build()  # detection on by default
    seed_rows(dep, session, [0, 1])
    start = dep.env.now
    results = {}
    procs = cyclic_writers(dep, session, results)
    dep.env.run_until_event(AllOf(dep.env, procs))
    elapsed = dep.env.now - start
    # One sweep interval (50 ms) plus slack, nowhere near 2 s.
    assert elapsed < 0.5
    # Deterministic victim: the youngest (second to begin) aborts.
    assert results[1] == "aborted"
    assert results[0] == "committed"
    counters = dep.deadlock_detector.counters()
    assert counters["cycles_found"] >= 1
    assert counters["victims_aborted"] >= 1
    assert sum(e.locks.deadlocks for e in dep.engines) >= 1
    # The survivor's effect is durable on both shards.
    assert run(dep, session.read_row(None, "kv", (0,))) == [0, 0]
    assert run(dep, session.read_row(None, "kv", (1,))) == [1, 0]


def test_detector_interval_validation():
    with pytest.raises(ValueError):
        DeploymentSpec.stock(seed=1).with_shards(2).with_robustness(
            detect_interval=0.0
        )


# ----------------------------------------------------------------------
# Scatter-read atomicity (the torn-read regression pair)
# ----------------------------------------------------------------------
def scatter_harness(dep, session, consistent):
    """A fenced 2PC writer bumping both shards with a deliberate pause
    mid-flight, plus a polling scatter reader; returns observations."""
    seed_rows(dep, session, [0, 1])
    proxy = SqlProxy(
        dep.env, dep.engine, None,
        shardmap=dep.shardmap, coordinator=dep.coordinator,
        shard_targets=[(s.engine, None, None) for s in dep.shards],
        consistent_scatter=consistent,
    )
    reader_session = proxy.session("probe")
    observations = []

    def writer():
        for round_no in range(1, 4):
            dtxn = dep.coordinator.begin(fenced=True)
            for k in (0, 1):
                yield from dep.coordinator.read_row(
                    dtxn, "kv", (k,), for_update=True
                )
            yield from dep.coordinator.update(
                dtxn, "kv", (0,), {"v": round_no}
            )
            # A wide window with shard 0 bumped but shard 1 not yet.
            yield dep.env.timeout(0.05)
            yield from dep.coordinator.update(
                dtxn, "kv", (1,), {"v": round_no}
            )
            yield from dep.coordinator.commit(dtxn)
            yield dep.env.timeout(0.02)

    def reader():
        while len(observations) < 40:
            yield dep.env.timeout(0.005)
            try:
                result = yield from reader_session.execute(
                    "SELECT k, v FROM kv"
                )
            except FenceTimeout:
                continue
            observations.append(tuple(sorted(
                (row[0], row[1]) for row in result.rows
            )))

    procs = [dep.env.process(writer()), dep.env.process(reader())]
    dep.env.run_until_event(AllOf(dep.env, procs))
    return observations


def torn(observations):
    return [obs for obs in observations if obs[0][1] != obs[1][1]]


def test_scatter_reads_torn_without_fence():
    dep, session = build(scatter_consistency=False)
    observations = scatter_harness(dep, session, consistent=False)
    # The mid-transaction window is 50 ms and the reader polls every
    # 5 ms: unfenced scatters demonstrably observe the torn state.
    assert torn(observations)


def test_scatter_reads_atomic_with_fence():
    dep, session = build()
    observations = scatter_harness(dep, session, consistent=True)
    assert observations
    assert not torn(observations)
    # The fence actually did work: readers were held out at least once.
    assert dep.coordinator.fence.counters()["reader_waits"] >= 1


def test_fence_held_across_in_doubt_window():
    """A decided-but-interrupted 2PC keeps the write fence: scatter
    reads refuse (FenceTimeout) rather than observe the half-applied
    commit, and flow again once recovery finishes phase 2."""
    dep, session = build()
    seed_rows(dep, session, [0, 1])
    proxy = SqlProxy(
        dep.env, dep.engine, None,
        shardmap=dep.shardmap, coordinator=dep.coordinator,
        shard_targets=[(s.engine, None, None) for s in dep.shards],
        scatter_fence_timeout=0.05,
    )
    reader_session = proxy.session("probe")
    dep.coordinator.arm_failpoint("after_decision")

    def doomed():
        dtxn = session.begin()
        yield from session.update(dtxn, "kv", (0,), {"v": 7})
        yield from session.update(dtxn, "kv", (1,), {"v": 7})
        with pytest.raises(InDoubtTransaction):
            yield from session.commit(dtxn)
        return dtxn

    dtxn = run(dep, doomed())
    assert dtxn.status == "decided"
    assert dtxn.fence_held

    def blocked_read():
        with pytest.raises(FenceTimeout):
            yield from reader_session.execute("SELECT k, v FROM kv")

    run(dep, blocked_read())

    # Recovery finishes phase 2 and releases the fence.
    crashed = [i for i, e in enumerate(dep.engines) if e.crashed]
    for shard in crashed:
        run(dep, dep.coordinator.recover_shard(shard))
    assert not dtxn.fence_held
    result = run(
        dep, reader_session.execute("SELECT k, v FROM kv")
    )
    assert sorted((r[0], r[1]) for r in result.rows) == [(0, 7), (1, 7)]


# ----------------------------------------------------------------------
# Partitions and the new chaos kinds
# ----------------------------------------------------------------------
def test_partitioned_shard_aborts_cross_shard_writes():
    dep, session = build()
    seed_rows(dep, session, [0, 1])
    dep.coordinator.partition(1)

    def attempt():
        txn = session.begin()
        try:
            yield from session.update(txn, "kv", (0,), {"v": 1})
            yield from session.update(txn, "kv", (1,), {"v": 1})
            yield from session.commit(txn)
            return "committed"
        except TransactionAborted:
            yield from session.rollback(txn)
            return "aborted"

    assert run(dep, attempt()) == "aborted"
    assert dep.coordinator.partition_rejects >= 1
    # The partition is coordination-plane only: the shard's own engine
    # keeps serving (its storage is intact)...
    assert not dep.engines[1].crashed
    assert run(dep, dep.engines[1].read_row(None, "kv", (1,))) == [1, 0]
    # ...and healing restores cross-shard commits.
    dep.coordinator.heal(1)
    assert run(dep, attempt()) == "committed"
    assert run(dep, session.read_row(None, "kv", (0,))) == [0, 1]
    assert run(dep, session.read_row(None, "kv", (1,))) == [1, 1]


def test_shard_partition_chaos_kind_heals_and_resumes():
    dep, session = build()
    seed_rows(dep, session, [0, 1])
    schedule = ChaosSchedule()
    schedule.add(0.01, "shard_partition", "1", duration=0.1)
    injector = ChaosInjector(dep, schedule)
    injector.start()
    outcomes = []

    def loop():
        for _ in range(30):
            txn = session.begin()
            try:
                yield from session.update(txn, "kv", (0,), {"v": 1})
                yield from session.update(txn, "kv", (1,), {"v": 1})
                yield from session.commit(txn)
                outcomes.append("committed")
            except TransactionAborted:
                yield from session.rollback(txn)
                outcomes.append("aborted")
            yield dep.env.timeout(0.01)

    run(dep, loop())
    assert "aborted" in outcomes  # during the window
    assert outcomes[-1] == "committed"  # after the heal
    assert dep.coordinator.partition_rejects >= 1
    assert dep.coordinator.unresolved_in_doubt() == 0
    assert any("partitioned shard 1" in line for line in injector.log)
    assert any("healed shard 1" in line for line in injector.log)


def test_coordinator_crash_inflight_chaos_kind():
    dep, session = build()
    seed_rows(dep, session, [0, 1])
    schedule = ChaosSchedule()
    schedule.add(0.0, "coordinator_crash_inflight")
    injector = ChaosInjector(dep, schedule)
    injector.start()
    dep.env.run(until=dep.env.now + 0.01)

    def doomed():
        txn = session.begin()
        yield from session.update(txn, "kv", (0,), {"v": 5})
        yield from session.update(txn, "kv", (1,), {"v": 5})
        with pytest.raises(InDoubtTransaction):
            yield from session.commit(txn)

    run(dep, doomed())
    assert dep.coordinator.fired_failpoints
    crashed = [i for i, e in enumerate(dep.engines) if e.crashed]
    assert crashed
    for shard in crashed:
        run(dep, dep.coordinator.recover_shard(shard))
    assert dep.coordinator.unresolved_in_doubt() == 0
    assert run(dep, session.read_row(None, "kv", (0,))) == [0, 5]
    assert run(dep, session.read_row(None, "kv", (1,))) == [1, 5]


def test_before_participant_commit_failpoint():
    """The new failpoint crashes a participant inside phase 2: the
    transaction is decided, partially committed, and must converge to
    fully committed at recovery."""
    dep, session = build()
    seed_rows(dep, session, [0, 1])
    dep.coordinator.arm_failpoint("before_participant_commit", shard=1)

    def doomed():
        txn = session.begin()
        yield from session.update(txn, "kv", (0,), {"v": 3})
        yield from session.update(txn, "kv", (1,), {"v": 3})
        with pytest.raises(InDoubtTransaction):
            yield from session.commit(txn)
        return txn

    dtxn = run(dep, doomed())
    assert dtxn.status == "decided"
    assert dep.engines[1].crashed
    run(dep, dep.coordinator.recover_shard(1))
    assert dtxn.status == "committed"
    assert dep.coordinator.unresolved_in_doubt() == 0
    assert run(dep, session.read_row(None, "kv", (0,))) == [0, 3]
    assert run(dep, session.read_row(None, "kv", (1,))) == [1, 3]


def test_chaos_kind_validation():
    with pytest.raises(ValueError):
        ChaosEvent(0.0, "shard_partition", "1")  # needs a duration
    ChaosEvent(0.0, "shard_partition", "1", duration=0.1)
    ChaosEvent(0.0, "coordinator_crash_inflight")


# ----------------------------------------------------------------------
# Proxy write retries
# ----------------------------------------------------------------------
def build_frontend(seed=23):
    spec = (DeploymentSpec.stock(seed=seed)
            .with_shards(2).with_replicas(1))
    dep = spec.build()
    dep.start()
    session = dep.shard_session()
    session.create_table(
        "kv", Schema([Column("k", INT()), Column("v", INT())]), ["k"]
    )
    dep.shardmap.set_table("kv", ShardKeySpec(column_pos=0))
    return dep


def test_write_retry_recovers_transient_abort():
    dep = build_frontend()
    front = dep.frontend_session()
    attempts = []

    def work(txn):
        attempts.append(1)
        if len(attempts) == 1:
            raise TransactionAborted("transient (injected)")
        yield from dep.coordinator.insert(txn, "kv", [0, 42])
        return "done"

    assert run(dep, front.write(work)) == "done"
    assert len(attempts) == 2
    assert dep.frontend.write_retries == 1
    assert dep.frontend.write_retry_giveups == 0
    session = dep.shard_session()
    assert run(dep, session.read_row(None, "kv", (0,))) == [0, 42]


def test_write_retry_gives_up_after_max_attempts():
    dep = build_frontend()
    front = dep.frontend_session()
    attempts = []

    def work(txn):
        attempts.append(1)
        raise TransactionAborted("always (injected)")
        yield  # pragma: no cover - makes work a generator

    def attempt():
        with pytest.raises(TransactionAborted):
            yield from front.write(work)

    run(dep, attempt())
    policy = dep.frontend.write_retry
    assert len(attempts) == policy.max_attempts
    assert dep.frontend.write_retry_giveups == 1


def test_write_retry_never_retries_in_doubt():
    dep = build_frontend()
    front = dep.frontend_session()
    attempts = []

    def work(txn):
        attempts.append(1)
        raise InDoubtTransaction("decided; ack lost (injected)")
        yield  # pragma: no cover - makes work a generator

    def attempt():
        with pytest.raises(InDoubtTransaction):
            yield from front.write(work)

    run(dep, attempt())
    assert len(attempts) == 1
    assert dep.frontend.write_retries == 0
