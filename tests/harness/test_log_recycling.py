"""Log-space lifecycle: SegmentRing recycling gated on PageStore shipping."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.common import KB, StorageError
from repro.engine.codec import INT, VARCHAR, Column, Schema


def tiny_ring_deployment(segments=3, segment_kb=24):
    """A deliberately tiny log ring that wraps within a few transactions."""
    dep = Deployment(
        DeploymentConfig.astore_log(
            seed=8,
            log_ring_segments=segments,
            log_segment_bytes=segment_kb * KB,
        )
    )
    dep.start()
    dep.engine.create_table(
        "t", Schema([Column("id", INT()), Column("v", VARCHAR(64))]), ["id"]
    )
    return dep


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


def test_ring_wraps_and_recycles_under_sustained_writes():
    dep = tiny_ring_deployment()
    engine = dep.engine

    def work(env):
        for i in range(400):
            txn = engine.begin()
            yield from engine.insert(txn, "t", [i, "x" * 60])
            yield from engine.commit(txn)
        return engine.committed

    committed = run(dep, work(dep.env))
    assert committed == 400
    # The tiny ring must have wrapped (recycled) several times.
    assert dep.ring.segment_advances >= 3


def test_wrapped_log_still_recovers_committed_data():
    dep = tiny_ring_deployment()
    engine = dep.engine

    def work(env):
        for i in range(300):
            txn = engine.begin()
            yield from engine.insert(txn, "t", [i, "y" * 60])
            yield from engine.commit(txn)
        yield env.timeout(0.05)

    run(dep, work(dep.env))
    engine.crash()

    def recover(env):
        yield from engine.recover()
        first = yield from engine.read_row(None, "t", (0,))
        last = yield from engine.read_row(None, "t", (299,))
        return first, last

    first, last = run(dep, recover(dep.env))
    # Early records were recycled out of the ring, but their effects are
    # durable in PageStore (recycling is gated on shipped_lsn).
    assert first == [0, "y" * 60]
    assert last == [299, "y" * 60]
    assert engine.catalog.table("t").row_count == 300


def test_recycling_blocked_until_shipping_catches_up():
    """With shipping stalled, the ring must refuse to overwrite un-applied
    REDO rather than lose durability."""
    dep = tiny_ring_deployment(segments=2, segment_kb=16)
    engine = dep.engine
    # Sabotage the shipper: records never reach PageStore, so shipped_lsn
    # stays 0 and every FULL segment is non-recyclable.
    engine.config = engine.config.__class__(
        **{**engine.config.__dict__, "ship_interval": 10_000.0}
    )

    def work(env):
        for i in range(300):
            txn = engine.begin()
            yield from engine.insert(txn, "t", [i, "z" * 60])
            yield from engine.commit(txn)
        return "completed"

    # The refusal surfaces in the log-writer daemon (the flush path), which
    # halts the simulation rather than silently overwriting durable REDO.
    proc = dep.env.process(work(dep.env))
    with pytest.raises(StorageError, match="un-applied|log space"):
        dep.env.run_until_event(proc)
