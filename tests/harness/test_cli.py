"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_parser_accepts_every_command():
    parser = build_parser()
    for name in COMMANDS:
        args = parser.parse_args([name])
        assert args.command == name


def test_parser_client_lists():
    parser = build_parser()
    args = parser.parse_args(["fig6", "--clients", "2,4,8"])
    assert args.clients == "2,4,8"


def test_table2_command_runs(capsys):
    assert main(["table2", "--writes", "150"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "speedup" in out


def test_fig12_command_runs(capsys):
    assert main(["fig12", "--lookups", "400"]) == 0
    out = capsys.readouterr().out
    assert "Figure 12" in out
    assert "no-EBP" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-figure"])


def test_chaos_parser_wiring():
    parser = build_parser()
    args = parser.parse_args(["chaos", "--seed", "11", "--short"])
    assert args.command == "chaos"
    assert args.seed == 11
    assert args.short is True
    args = parser.parse_args(["chaos"])
    assert args.seed == 7
    assert args.short is False


def test_chaos_command_prints_report_and_exit_codes(capsys, monkeypatch):
    import json

    from repro.harness import soak

    calls = []

    def fake_soak(seed, short):
        calls.append((seed, short))
        ok = seed != 99
        return {
            "seed": seed, "short": short, "ok": ok,
            "violations": [] if ok else ["district (1,1): lost update"],
        }

    monkeypatch.setattr(soak, "run_chaos_soak", fake_soak)
    assert main(["chaos", "--seed", "5", "--short"]) == 0
    out = capsys.readouterr().out
    report = json.loads(out)
    assert report["seed"] == 5 and report["short"] is True
    assert calls == [(5, True)]

    assert main(["chaos", "--seed", "99"]) == 1
    captured = capsys.readouterr()
    assert json.loads(captured.out)["ok"] is False
    assert "invariant violation" in captured.err
