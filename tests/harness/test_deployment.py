"""Tests for the deployment builder and log backends."""

import pytest

from repro.common import KB, MB
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.engine.dbengine import EngineConfig
from repro.engine.logbackends import AStoreLogBackend, SsdLogBackend
from repro.harness.deployment import Deployment, DeploymentConfig


def simple_schema():
    return Schema([Column("id", INT()), Column("v", VARCHAR(16))])


def test_stock_deployment_has_logstore_no_astore():
    dep = Deployment(DeploymentConfig.stock())
    assert dep.logstore is not None
    assert dep.astore is None
    assert dep.ring is None
    assert dep.ebp is None
    assert isinstance(dep.engine.log_backend, SsdLogBackend)


def test_astore_log_deployment_has_ring():
    dep = Deployment(DeploymentConfig.astore_log())
    assert dep.logstore is None
    assert dep.astore is not None
    assert dep.ring is not None
    assert dep.ebp is None
    assert isinstance(dep.engine.log_backend, AStoreLogBackend)


def test_astore_ebp_deployment_has_both():
    dep = Deployment(DeploymentConfig.astore_ebp())
    assert dep.ring is not None
    assert dep.ebp is not None
    assert dep.engine.ebp is dep.ebp


def test_pq_config_flag():
    assert DeploymentConfig.astore_pq().enable_pushdown
    assert not DeploymentConfig.astore_ebp().enable_pushdown


def test_start_initializes_ring_segments():
    dep = Deployment(DeploymentConfig.astore_log(log_ring_segments=4))
    dep.start()
    assert len(dep.ring.segment_ids) == 4
    dep.start()  # idempotent


def test_session_defaults_follow_deployment():
    dep = Deployment(DeploymentConfig.astore_pq())
    dep.start()
    session = dep.new_session()
    assert session.planner_config.enable_pushdown
    assert session.pushdown_runtime is not None
    off = dep.new_session(enable_pushdown=False)
    assert off.pushdown_runtime is None


def test_same_seed_same_virtual_timing():
    """Determinism: identical runs produce identical virtual clocks."""
    results = []
    for _ in range(2):
        dep = Deployment(DeploymentConfig.astore_ebp(seed=123))
        dep.start()
        engine = dep.engine
        engine.create_table("t", simple_schema(), ["id"])

        def work(env):
            txn = engine.begin()
            for i in range(40):
                yield from engine.insert(txn, "t", [i, "v%d" % i])
            yield from engine.commit(txn)
            return env.now

        proc = dep.env.process(work(dep.env))
        dep.env.run_until_event(proc)
        results.append(proc.value)
    assert results[0] == results[1]


def test_different_seeds_differ():
    results = []
    for seed in (1, 2):
        dep = Deployment(DeploymentConfig.astore_log(seed=seed))
        dep.start()
        engine = dep.engine
        engine.create_table("t", simple_schema(), ["id"])

        def work(env):
            txn = engine.begin()
            yield from engine.insert(txn, "t", [1, "x"])
            yield from engine.commit(txn)
            return env.now

        proc = dep.env.process(work(dep.env))
        dep.env.run_until_event(proc)
        results.append(proc.value)
    assert results[0] != results[1]


def test_log_recycling_gated_on_shipping():
    dep = Deployment(DeploymentConfig.astore_log())
    # Before the engine exists/ships, recycling is permissive; afterwards
    # it requires shipped_lsn to cover the segment.
    assert dep._can_recycle(0)
    dep.engine.shipped_lsn = 50
    assert dep._can_recycle(49)
    assert not dep._can_recycle(51)


def test_ssd_log_backend_recovery_returns_retained_records():
    dep = Deployment(DeploymentConfig.stock())
    dep.start()
    engine = dep.engine
    engine.create_table("t", simple_schema(), ["id"])

    def work(env):
        txn = engine.begin()
        for i in range(5):
            yield from engine.insert(txn, "t", [i, "v"])
        yield from engine.commit(txn)

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)

    def recover(env):
        return (yield from engine.log_backend.recover())

    proc = dep.env.process(recover(dep.env))
    dep.env.run_until_event(proc)
    records = proc.value
    assert any(r.commit for r in records)
    assert sum(1 for r in records if not r.is_marker) >= 5


def test_stock_crash_recovery_roundtrip():
    """Recovery works on the SSD backend too, not just AStore."""
    dep = Deployment(DeploymentConfig.stock())
    dep.start()
    engine = dep.engine
    engine.create_table("t", simple_schema(), ["id"])

    def work(env):
        txn = engine.begin()
        for i in range(20):
            yield from engine.insert(txn, "t", [i, "v%d" % i])
        yield from engine.commit(txn)
        yield env.timeout(0.05)

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)
    engine.crash()

    def recover(env):
        stats = yield from engine.recover()
        row = yield from engine.read_row(None, "t", (7,))
        return stats, row

    proc = dep.env.process(recover(dep.env))
    dep.env.run_until_event(proc)
    stats, row = proc.value
    assert row == [7, "v7"]
