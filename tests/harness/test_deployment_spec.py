"""DeploymentSpec: builder methods, validation, registry-backed stats."""

import pytest

from repro import MB, DeploymentSpec
from repro.harness.deployment import Deployment, DeploymentConfig
from repro.harness.stats import collect_stats, format_stats


def test_builders_compose_and_copy():
    base = DeploymentSpec(seed=7)
    spec = base.with_astore(servers=4).with_ebp(128 * MB).with_pushdown()
    assert spec.use_astore_log and spec.use_ebp and spec.enable_pushdown
    assert spec.astore_servers == 4
    assert spec.ebp_capacity_bytes == 128 * MB
    # Builders return copies; the base spec is untouched.
    assert not base.use_astore_log
    assert base.astore_servers == 3


def test_builders_match_canonical_shapes():
    built = DeploymentSpec().with_astore().with_ebp().with_pushdown()
    assert built == DeploymentSpec.astore_pq()
    assert DeploymentSpec().with_seed(9) == DeploymentSpec(seed=9)


def test_with_engine_overrides_engine_config():
    spec = DeploymentSpec().with_engine(buffer_pool_bytes=8 * MB)
    assert spec.engine.buffer_pool_bytes == 8 * MB
    # Other engine fields keep their defaults.
    assert spec.engine.page_size == DeploymentSpec().engine.page_size


def test_validation_rejects_bad_fields():
    with pytest.raises(ValueError):
        DeploymentSpec(astore_servers=0)
    with pytest.raises(ValueError):
        DeploymentSpec(ebp_policy="lru")
    with pytest.raises(ValueError):
        DeploymentSpec(log_replication=5, astore_servers=3)
    with pytest.raises(ValueError):
        DeploymentSpec(use_ebp=True, ebp_capacity_bytes=MB, ebp_segment_bytes=4 * MB)


def test_build_stands_up_a_deployment():
    dep = DeploymentSpec.astore_ebp(seed=11).build()
    dep.start()
    assert dep.config.seed == 11
    assert dep.ebp is not None
    assert dep.astore is not None


def test_deployment_config_shim_still_works():
    # Pre-redesign construction path must run unchanged.
    dep = Deployment(DeploymentConfig.astore_pq(seed=5))
    dep.start()
    assert isinstance(dep.config, DeploymentSpec)
    assert dep.config.enable_pushdown


def test_tracing_flag_wires_a_recording_tracer():
    traced = DeploymentSpec.stock().with_tracing().build()
    assert traced.tracer.enabled
    plain = DeploymentSpec.stock().build()
    assert not plain.tracer.enabled


def test_stats_come_from_registry_snapshot():
    dep = DeploymentSpec.astore_pq(seed=3).build()
    dep.start()
    stats = collect_stats(dep)
    assert stats == dep.registry.snapshot()
    # Legacy schema anchors, now registry gauges.
    assert stats["engine"]["committed"] == 0
    assert "hit_ratio" in stats["ebp"]
    assert "rebuilds" in stats["astore"]
    assert stats["query"]["pushdown"]["fragments"] == 0
    assert "queue_wait_s" in format_stats(dep)
