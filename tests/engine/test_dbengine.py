"""Integration tests for the DBEngine: DML, transactions, recovery."""

import pytest

from repro.common import KB, MB, PageId, QueryError, TransactionAborted
from repro.engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from repro.engine.dbengine import EngineConfig
from repro.harness.deployment import Deployment, DeploymentConfig


def account_schema():
    return Schema(
        [
            Column("id", INT()),
            Column("name", VARCHAR(32)),
            Column("balance", DECIMAL(2)),
        ]
    )


def make_deployment(kind="astore_log", **engine_overrides):
    factory = getattr(DeploymentConfig, kind)
    engine = EngineConfig(**engine_overrides) if engine_overrides else EngineConfig()
    dep = Deployment(factory(engine=engine))
    dep.start()
    dep.engine.create_table("accounts", account_schema(), ["id"])
    return dep


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


def test_insert_commit_read():
    dep = make_deployment()
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        yield from engine.insert(txn, "accounts", [1, "alice", 100.0])
        yield from engine.commit(txn)
        return (yield from engine.read_row(None, "accounts", (1,)))

    assert run(dep, work(dep.env)) == [1, "alice", 100.0]
    assert dep.engine.committed == 1


def test_duplicate_key_rejected():
    dep = make_deployment()
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        yield from engine.insert(txn, "accounts", [1, "a", 1.0])
        yield from engine.insert(txn, "accounts", [1, "b", 2.0])

    with pytest.raises(QueryError, match="duplicate"):
        run(dep, work(dep.env))


def test_update_and_delete():
    dep = make_deployment()
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        yield from engine.insert(txn, "accounts", [1, "a", 1.0])
        yield from engine.insert(txn, "accounts", [2, "b", 2.0])
        yield from engine.commit(txn)
        txn = engine.begin()
        yield from engine.update(txn, "accounts", (1,), {"balance": 42.5})
        yield from engine.delete(txn, "accounts", (2,))
        yield from engine.commit(txn)
        one = yield from engine.read_row(None, "accounts", (1,))
        two = yield from engine.read_row(None, "accounts", (2,))
        return one, two

    one, two = run(dep, work(dep.env))
    assert one == [1, "a", 42.5]
    assert two is None


def test_update_missing_row_raises():
    dep = make_deployment()
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        yield from engine.update(txn, "accounts", (99,), {"balance": 1.0})

    with pytest.raises(QueryError):
        run(dep, work(dep.env))


def test_rollback_restores_everything():
    dep = make_deployment()
    engine = dep.engine

    def work(env):
        setup = engine.begin()
        yield from engine.insert(setup, "accounts", [1, "a", 10.0])
        yield from engine.commit(setup)
        txn = engine.begin()
        yield from engine.insert(txn, "accounts", [2, "b", 20.0])
        yield from engine.update(txn, "accounts", (1,), {"balance": 999.0})
        yield from engine.delete(txn, "accounts", (1,))
        yield from engine.rollback(txn)
        one = yield from engine.read_row(None, "accounts", (1,))
        two = yield from engine.read_row(None, "accounts", (2,))
        return one, two

    one, two = run(dep, work(dep.env))
    assert one == [1, "a", 10.0]
    assert two is None
    assert dep.engine.aborted == 1


def test_row_lock_serializes_writers():
    dep = make_deployment()
    engine = dep.engine
    order = []

    def setup(env):
        txn = engine.begin()
        yield from engine.insert(txn, "accounts", [1, "hot", 0.0])
        yield from engine.commit(txn)

    run(dep, setup(dep.env))

    def writer(env, name, hold):
        txn = engine.begin()
        row = yield from engine.read_row(txn, "accounts", (1,), for_update=True)
        order.append(("start", name))
        yield env.timeout(hold)
        yield from engine.update(
            txn, "accounts", (1,), {"balance": row[2] + 1.0}
        )
        yield from engine.commit(txn)
        order.append(("done", name))

    p1 = dep.env.process(writer(dep.env, "t1", 0.01))
    p2 = dep.env.process(writer(dep.env, "t2", 0.01))
    from repro.sim.core import AllOf

    dep.env.run_until_event(AllOf(dep.env, [p1, p2]))
    assert order[0] == ("start", "t1")
    assert order[1] == ("done", "t1")  # t2 could not start until t1 finished

    def check(env):
        return (yield from engine.read_row(None, "accounts", (1,)))

    assert run(dep, check(dep.env))[2] == 2.0  # both increments applied


def test_deadlock_detected_and_victim_aborted():
    dep = make_deployment()
    engine = dep.engine

    def setup(env):
        txn = engine.begin()
        yield from engine.insert(txn, "accounts", [1, "a", 0.0])
        yield from engine.insert(txn, "accounts", [2, "b", 0.0])
        yield from engine.commit(txn)

    run(dep, setup(dep.env))
    outcomes = []

    def clasher(env, first, second, delay):
        txn = engine.begin()
        try:
            yield from engine.read_row(txn, "accounts", (first,), for_update=True)
            yield env.timeout(delay)
            yield from engine.read_row(txn, "accounts", (second,), for_update=True)
            yield from engine.commit(txn)
            outcomes.append("committed")
        except TransactionAborted:
            yield from engine.rollback(txn)
            outcomes.append("aborted")

    p1 = dep.env.process(clasher(dep.env, 1, 2, 0.01))
    p2 = dep.env.process(clasher(dep.env, 2, 1, 0.01))
    from repro.sim.core import AllOf

    dep.env.run_until_event(AllOf(dep.env, [p1, p2]))
    assert sorted(outcomes) == ["aborted", "committed"]
    assert engine.locks.deadlocks == 1


def test_pages_flow_to_pagestore():
    dep = make_deployment()
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        for i in range(50):
            yield from engine.insert(txn, "accounts", [i, "user", float(i)])
        yield from engine.commit(txn)
        yield env.timeout(0.05)  # let the shipper run

    run(dep, work(dep.env))
    table = engine.catalog.table("accounts")
    pages = dep.pagestore.pages_of_space(table.space_no)
    total_rows = sum(page.row_count for page in pages)
    assert total_rows == 50


def test_crash_recovery_committed_data_survives():
    dep = make_deployment()
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        for i in range(30):
            yield from engine.insert(txn, "accounts", [i, "u%d" % i, float(i)])
        yield from engine.commit(txn)
        txn = engine.begin()
        yield from engine.update(txn, "accounts", (5,), {"balance": 5555.0})
        yield from engine.commit(txn)
        yield env.timeout(0.05)

    run(dep, work(dep.env))
    engine.crash()
    assert engine.catalog.table("accounts").row_count == 0  # indexes gone

    def recovery(env):
        stats = yield from engine.recover()
        row = yield from engine.read_row(None, "accounts", (5,))
        return stats, row

    stats, row = run(dep, recovery(dep.env))
    assert row == [5, "u5", 5555.0]
    assert engine.catalog.table("accounts").row_count == 30
    assert stats["committed_txns"] >= 2


def test_crash_recovery_uncommitted_txn_rolled_back():
    dep = make_deployment()
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        yield from engine.insert(txn, "accounts", [1, "committed", 1.0])
        yield from engine.commit(txn)
        # In-flight transaction: logged (immediate logging) but no marker.
        loser = engine.begin()
        yield from engine.insert(loser, "accounts", [2, "loser", 2.0])
        yield from engine.update(loser, "accounts", (1,), {"balance": 666.0})
        # Force the log to flush the loser's records before the crash.
        waiter = engine.begin()
        yield from engine.insert(waiter, "accounts", [3, "flushed", 3.0])
        yield from engine.commit(waiter)
        yield env.timeout(0.05)

    run(dep, work(dep.env))
    engine.crash()

    def recovery(env):
        stats = yield from engine.recover()
        one = yield from engine.read_row(None, "accounts", (1,))
        two = yield from engine.read_row(None, "accounts", (2,))
        return stats, one, two

    stats, one, two = run(dep, recovery(dep.env))
    assert one == [1, "committed", 1.0]  # loser's update undone
    assert two is None  # loser's insert undone
    assert stats["losers_undone"] >= 2


def test_recovery_with_ebp_rebuild():
    dep = Deployment(
        DeploymentConfig.astore_ebp(
            engine=EngineConfig(buffer_pool_bytes=8 * 16 * KB),
            ebp_capacity_bytes=8 * MB,
        )
    )
    dep.start()
    engine = dep.engine
    from repro.engine.codec import VARCHAR as VC

    wide_schema = Schema(
        [
            Column("id", INT()),
            Column("name", VARCHAR(32)),
            Column("balance", DECIMAL(2)),
            Column("pad", VC(4200)),  # ~4 rows/page so inserts spill
        ]
    )
    engine.create_table("accounts", wide_schema, ["id"])

    def work(env):
        for chunk in range(8):
            txn = engine.begin()
            for i in range(chunk * 25, chunk * 25 + 25):
                yield from engine.insert(
                    txn, "accounts", [i, "u", float(i), "p" * 4096]
                )
            yield from engine.commit(txn)
        yield env.timeout(0.3)
        return len(dep.ebp.index)

    cached_before = run(dep, work(dep.env))
    assert cached_before > 0
    engine.crash()

    def recovery(env):
        stats = yield from engine.recover()
        row = yield from engine.read_row(None, "accounts", (150,))
        return stats, row

    stats, row = run(dep, recovery(dep.env))
    assert row[:3] == [150, "u", 150.0]
    assert stats["ebp_entries"] > 0


def test_read_row_missing_returns_none():
    dep = make_deployment()

    def work(env):
        return (yield from dep.engine.read_row(None, "accounts", (404,)))

    assert run(dep, work(dep.env)) is None


def test_row_migration_on_growing_update():
    dep = make_deployment()
    engine = dep.engine
    schema = Schema([Column("id", INT()), Column("data", VARCHAR(0))])
    engine.create_table("blobs", schema, ["id"])

    def work(env):
        txn = engine.begin()
        # Fill one page nearly full with small rows.
        for i in range(10):
            yield from engine.insert(txn, "blobs", [i, "x" * 1500])
        yield from engine.commit(txn)
        txn = engine.begin()
        # Grow row 0 far beyond its page's free space.
        yield from engine.update(txn, "blobs", (0,), {"data": "y" * 9000})
        yield from engine.commit(txn)
        row = yield from engine.read_row(None, "blobs", (0,))
        return row

    row = run(dep, work(dep.env))
    assert row[1] == "y" * 9000
    table = engine.catalog.table("blobs")
    assert table.row_count == 10
