"""Tests for the Extended Buffer Pool."""

import pytest

from repro.common import KB, MB, PageId
from repro.astore.cluster import AStoreCluster
from repro.engine.ebp import EBP_PAGE_TAG, ExtendedBufferPool, describe_ebp_payload
from repro.engine.page import Page, PageOp, apply_op
from repro.sim.core import Environment
from repro.sim.rand import SeedSequence

PAGE_SIZE = 4 * KB


def make_ebp(capacity=8 * MB, segment=1 * MB, policy="flat", priorities=None,
             compaction=True, servers=3):
    env = Environment()
    seeds = SeedSequence(77)
    cluster = AStoreCluster(env, seeds, num_servers=servers,
                            segment_slot_size=max(segment, 1 * MB))
    client = cluster.new_client("ebp")
    ebp = ExtendedBufferPool(
        env,
        client,
        capacity_bytes=capacity,
        segment_size=segment,
        page_size=PAGE_SIZE,
        policy=policy,
        space_priorities=priorities,
        compaction_enabled=compaction,
    )
    return env, cluster, ebp


def make_page(space, number, lsn=1, payload=b"data"):
    page = Page(PageId(space, number), size=PAGE_SIZE)
    apply_op(page, PageOp("insert", slot=0, row=payload), lsn)
    return page


def run(env, gen):
    proc = env.process(gen)
    env.run_until_event(proc)
    return proc.value


def test_cache_and_get_roundtrip():
    env, cluster, ebp = make_ebp()
    page = make_page(1, 1, lsn=10, payload=b"cached")

    def do(env):
        ok = yield from ebp.cache_page(page)
        assert ok
        got = yield from ebp.get_page(PageId(1, 1), required_lsn=10)
        return got

    got = run(env, do(env))
    assert got is not None
    assert got.get(0) == b"cached"
    assert got.page_lsn == 10
    assert ebp.hits == 1


def test_get_returns_clone():
    env, cluster, ebp = make_ebp()
    page = make_page(1, 1, lsn=5)

    def do(env):
        yield from ebp.cache_page(page)
        first = yield from ebp.get_page(PageId(1, 1))
        second = yield from ebp.get_page(PageId(1, 1))
        return first, second

    first, second = run(env, do(env))
    assert first is not second
    assert first.same_content(second)


def test_miss_on_unknown_page():
    env, cluster, ebp = make_ebp()

    def do(env):
        return (yield from ebp.get_page(PageId(9, 9)))

    assert run(env, do(env)) is None
    assert ebp.misses == 1


def test_stale_entry_is_dropped_not_served():
    env, cluster, ebp = make_ebp()
    page = make_page(1, 1, lsn=10)

    def do(env):
        yield from ebp.cache_page(page)
        got = yield from ebp.get_page(PageId(1, 1), required_lsn=20)
        return got

    assert run(env, do(env)) is None
    assert ebp.stale_hits == 1
    assert PageId(1, 1) not in ebp.index


def test_newer_version_makes_old_copy_garbage():
    env, cluster, ebp = make_ebp()
    v1 = make_page(1, 1, lsn=10)
    v2 = make_page(1, 1, lsn=20)

    def do(env):
        yield from ebp.cache_page(v1)
        yield from ebp.cache_page(v2)
        got = yield from ebp.get_page(PageId(1, 1), required_lsn=20)
        return got

    got = run(env, do(env))
    assert got.page_lsn == 20
    garbage = sum(s.garbage_bytes for s in ebp._segments.values())
    assert garbage == PAGE_SIZE


def test_older_version_not_recached():
    env, cluster, ebp = make_ebp()
    v2 = make_page(1, 1, lsn=20)
    v1 = make_page(1, 1, lsn=10)

    def do(env):
        yield from ebp.cache_page(v2)
        yield from ebp.cache_page(v1)  # older: ignored
        got = yield from ebp.get_page(PageId(1, 1), required_lsn=0)
        return got

    assert run(env, do(env)).page_lsn == 20


def test_capacity_eviction_lru():
    # Room for 2 segments x 256 pages... use tiny capacity: 2 segments.
    env, cluster, ebp = make_ebp(capacity=2 * MB, segment=1 * MB)
    pages_per_segment = (1 * MB) // PAGE_SIZE

    def do(env):
        total = pages_per_segment * 2 + 10
        for number in range(total):
            ok = yield from ebp.cache_page(make_page(1, number, lsn=1))
        return total

    total = run(env, do(env))
    assert ebp.evictions > 0
    assert len(ebp.index) < total
    assert ebp.allocated_bytes <= ebp.capacity_bytes


def test_priority_policy_evicts_low_priority_first():
    env, cluster, ebp = make_ebp(
        capacity=2 * MB, segment=1 * MB, policy="priority",
        priorities={1: 0, 2: 5},
    )
    pages_per_segment = (1 * MB) // PAGE_SIZE

    def do(env):
        # Fill with alternating low (space 1) and high (space 2) priority.
        for number in range(pages_per_segment * 2 + 20):
            space = 1 if number % 2 == 0 else 2
            yield from ebp.cache_page(make_page(space, number, lsn=1))

    run(env, do(env))
    low = [pid for pid in ebp.index if pid.space_no == 1]
    high = [pid for pid in ebp.index if pid.space_no == 2]
    assert len(high) > len(low)  # victims were taken from low priority


def test_compaction_reclaims_garbage_segments():
    env, cluster, ebp = make_ebp(capacity=3 * MB, segment=1 * MB)
    pages_per_segment = (1 * MB) // PAGE_SIZE

    def do(env):
        # Write pages, then overwrite all of them (making v1 garbage).
        for number in range(pages_per_segment):
            yield from ebp.cache_page(make_page(1, number, lsn=1))
        for number in range(pages_per_segment):
            yield from ebp.cache_page(make_page(1, number, lsn=2))
        released_before = ebp.segments_released
        yield from ebp.run_compaction()
        return released_before

    released_before = run(env, do(env))
    assert ebp.segments_released > released_before


def test_no_compaction_mode_releases_whole_segments():
    env, cluster, ebp = make_ebp(capacity=2 * MB, segment=1 * MB,
                                 compaction=False)
    pages_per_segment = (1 * MB) // PAGE_SIZE

    def do(env):
        for number in range(pages_per_segment * 3):
            yield from ebp.cache_page(make_page(1, number, lsn=1))

    run(env, do(env))
    assert ebp.segments_released > 0


def test_purge_server_only_lowers_hit_ratio():
    env, cluster, ebp = make_ebp()

    def do(env):
        for number in range(30):
            yield from ebp.cache_page(make_page(1, number, lsn=1))
        victim = next(iter(cluster.servers))
        cluster.servers[victim].crash()
        purged = ebp.purge_server(victim)
        # Reads of surviving entries still work; purged ones are misses.
        survivors = 0
        for number in range(30):
            got = yield from ebp.get_page(PageId(1, number))
            if got is not None:
                survivors += 1
        return purged, survivors

    purged, survivors = run(env, do(env))
    assert purged + survivors >= 30 - ebp.evictions
    assert survivors > 0 or purged == 30


def test_rebuild_index_after_engine_crash():
    env, cluster, ebp = make_ebp()

    def do(env):
        for number in range(10):
            yield from ebp.cache_page(make_page(1, number, lsn=5))
        # Engine pushes newer LSNs for two pages (they were re-modified).
        ebp._dirty_lsns[PageId(1, 0)] = 9
        ebp._dirty_lsns[PageId(1, 1)] = 9
        yield from ebp.flush_dirty_lsns()
        # Crash: the index vanishes with the engine.
        ebp.index.clear()
        count = yield from ebp.rebuild_index_after_crash()
        return count

    count = run(env, do(env))
    # Pages 0 and 1 are pruned as stale (cached LSN 5 < pushed LSN 9).
    assert count == 8
    assert PageId(1, 0) not in ebp.index
    assert PageId(1, 5) in ebp.index


def test_rebuild_keeps_newest_copy():
    env, cluster, ebp = make_ebp()

    def do(env):
        yield from ebp.cache_page(make_page(1, 1, lsn=5))
        yield from ebp.cache_page(make_page(1, 1, lsn=9))
        ebp.index.clear()
        yield from ebp.rebuild_index_after_crash()
        got = yield from ebp.get_page(PageId(1, 1))
        return got

    assert run(env, do(env)).page_lsn == 9


def test_describe_payload():
    page = make_page(1, 1, lsn=3)
    payload = (EBP_PAGE_TAG, page.page_id, 3, page)
    assert describe_ebp_payload(payload) == (page.page_id, 3)
    assert describe_ebp_payload("junk") is None
    assert describe_ebp_payload(("other", 1, 2, 3)) is None


def test_policy_validation():
    env = Environment()
    seeds = SeedSequence(1)
    cluster = AStoreCluster(env, seeds, num_servers=1)
    client = cluster.new_client("x")
    with pytest.raises(ValueError):
        ExtendedBufferPool(env, client, capacity_bytes=8 * MB, policy="weird")
    with pytest.raises(ValueError):
        ExtendedBufferPool(env, client, capacity_bytes=1 * KB)


def test_flush_dirty_lsns_batches():
    env, cluster, ebp = make_ebp()

    def do(env):
        yield from ebp.cache_page(make_page(1, 1, lsn=5))
        ebp.note_page_modified(PageId(1, 1), 8)
        ebp.note_page_modified(PageId(2, 2), 8)  # not cached: ignored
        sent = yield from ebp.flush_dirty_lsns()
        return sent

    assert run(env, do(env)) == 1
    for server in cluster.servers.values():
        assert server.ebp_latest_lsn.get(PageId(1, 1)) == 8
