"""Engine back-pressure and admission-control behaviours."""

import pytest

from repro.common import KB, MB
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.engine.dbengine import EngineConfig
from repro.harness.deployment import Deployment, DeploymentConfig


def test_ebp_write_queue_sheds_load():
    """With a tiny queue bound, eviction bursts drop EBP writes instead of
    queueing unboundedly (the EBP is best-effort)."""
    dep = Deployment(
        DeploymentConfig.astore_ebp(
            seed=9,
            engine=EngineConfig(
                buffer_pool_bytes=4 * 16 * KB,
                ebp_writer_threads=1,
                ebp_write_queue_limit=2,
            ),
            ebp_capacity_bytes=32 * MB,
        )
    )
    dep.start()
    engine = dep.engine
    engine.create_table(
        "wide",
        Schema([Column("id", INT()), Column("pad", VARCHAR(4200))]),
        ["id"],
    )

    def work(env):
        for chunk in range(6):
            txn = engine.begin()
            for i in range(chunk * 30, chunk * 30 + 30):
                yield from engine.insert(txn, "wide", [i, "p" * 4096])
            yield from engine.commit(txn)
        yield env.timeout(0.2)

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)
    # ~45 pages churned through a 4-page pool with a 2-deep queue and one
    # slow writer: some writes must have been shed, some must have landed.
    assert engine.ebp_writes_dropped > 0
    assert dep.ebp.pages_written > 0


def test_ebp_writer_pool_size_respected():
    config = EngineConfig(ebp_writer_threads=3)
    dep = Deployment(DeploymentConfig.astore_ebp(seed=9, engine=config))
    dep.start()  # must not raise; three writer daemons armed
    assert dep.engine.config.ebp_writer_threads == 3


def test_pages_never_duplicate_frames_under_concurrent_misses():
    """Two processes missing the same page concurrently end up sharing one
    frame (the single-frame rule)."""
    dep = Deployment(
        DeploymentConfig.astore_log(
            seed=9, engine=EngineConfig(buffer_pool_bytes=4 * 16 * KB)
        )
    )
    dep.start()
    engine = dep.engine
    engine.create_table(
        "t", Schema([Column("id", INT()), Column("v", VARCHAR(16))]), ["id"]
    )

    def load(env):
        txn = engine.begin()
        for i in range(50):
            yield from engine.insert(txn, "t", [i, "v"])
        yield from engine.commit(txn)
        yield env.timeout(0.05)
        engine.buffer_pool.clear()  # force misses

    proc = dep.env.process(load(dep.env))
    dep.env.run_until_event(proc)
    table = engine.catalog.table("t")
    page_id = table.page_id(table.page_nos[0])
    frames = []

    def fetcher(env):
        page = yield from engine.fetch_page(page_id)
        frames.append(page)

    from repro.sim.core import AllOf

    procs = [dep.env.process(fetcher(dep.env)) for _ in range(4)]
    dep.env.run_until_event(AllOf(dep.env, procs))
    assert len(frames) == 4
    assert all(frame is frames[0] for frame in frames)
