"""Tests for the lock manager, transactions, tables and the catalog."""

import pytest

from repro.common import QueryError, TransactionAborted
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.engine.table import Catalog, Table
from repro.engine.txn import LockManager, Transaction
from repro.sim.core import AllOf, Environment


# ---------------------------------------------------------------------------
# Lock manager
# ---------------------------------------------------------------------------


def test_lock_acquire_release():
    env = Environment()
    locks = LockManager(env)
    txn = Transaction(env)

    def work(env):
        yield from locks.acquire(txn, ("t", 1))
        return locks.owner_of(("t", 1))

    proc = env.process(work(env))
    env.run()
    assert proc.value == txn.txn_id
    locks.release_all(txn)
    assert locks.owner_of(("t", 1)) is None


def test_lock_reentrant_for_owner():
    env = Environment()
    locks = LockManager(env)
    txn = Transaction(env)

    def work(env):
        yield from locks.acquire(txn, ("t", 1))
        yield from locks.acquire(txn, ("t", 1))  # no deadlock with self
        return "ok"

    proc = env.process(work(env))
    env.run()
    assert proc.value == "ok"


def test_lock_fifo_between_transactions():
    env = Environment()
    locks = LockManager(env)
    order = []

    def worker(env, name, hold):
        txn = Transaction(env)
        yield from locks.acquire(txn, ("t", 1))
        order.append(name)
        yield env.timeout(hold)
        locks.release_all(txn)

    env.process(worker(env, "a", 1.0))
    env.process(worker(env, "b", 1.0))
    env.process(worker(env, "c", 1.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_lock_wait_timeout():
    env = Environment()
    locks = LockManager(env, wait_timeout=0.5)
    holder = Transaction(env)

    def hold_forever(env):
        yield from locks.acquire(holder, ("t", 1))
        yield env.timeout(10.0)
        locks.release_all(holder)

    outcomes = []

    def waiter(env):
        txn = Transaction(env)
        try:
            yield from locks.acquire(txn, ("t", 1))
            outcomes.append("acquired")
        except TransactionAborted:
            outcomes.append("timeout")

    env.process(hold_forever(env))
    env.process(waiter(env))
    env.run()
    assert outcomes == ["timeout"]
    assert locks.timeouts == 1


def test_deadlock_cycle_detected():
    env = Environment()
    locks = LockManager(env)
    t1, t2 = Transaction(env), Transaction(env)
    outcomes = []

    def worker(env, txn, first, second, delay):
        yield from locks.acquire(txn, first)
        yield env.timeout(delay)
        try:
            yield from locks.acquire(txn, second)
            outcomes.append("ok")
            yield env.timeout(0.1)
        except TransactionAborted:
            outcomes.append("deadlock")
        locks.release_all(txn)

    env.process(worker(env, t1, ("t", 1), ("t", 2), 0.1))
    env.process(worker(env, t2, ("t", 2), ("t", 1), 0.1))
    env.run()
    assert sorted(outcomes) == ["deadlock", "ok"]
    assert locks.deadlocks == 1


def test_three_way_deadlock_detected():
    env = Environment()
    locks = LockManager(env)
    txns = [Transaction(env) for _ in range(3)]
    outcomes = []

    def worker(env, txn, first, second):
        yield from locks.acquire(txn, first)
        yield env.timeout(0.1)
        try:
            yield from locks.acquire(txn, second)
            outcomes.append("ok")
            yield env.timeout(0.1)
        except TransactionAborted:
            outcomes.append("deadlock")
        locks.release_all(txn)

    keys = [("k", 0), ("k", 1), ("k", 2)]
    for index, txn in enumerate(txns):
        env.process(worker(env, txn, keys[index], keys[(index + 1) % 3]))
    env.run()
    assert "deadlock" in outcomes
    assert outcomes.count("ok") == 2


# ---------------------------------------------------------------------------
# Tables and catalog
# ---------------------------------------------------------------------------


def sample_table():
    schema = Schema(
        [Column("a", INT()), Column("b", INT()), Column("c", VARCHAR(16))]
    )
    return Table("t", schema, ["a", "b"], space_no=3)


def test_key_extraction():
    table = sample_table()
    assert table.key_of([1, 2, "x"]) == (1, 2)


def test_index_insert_lookup_delete():
    table = sample_table()
    table.index_insert([1, 2, "x"], (0, 0))
    assert table.lookup((1, 2)) == (0, 0)
    table.index_delete([1, 2, "x"])
    assert table.lookup((1, 2)) is None
    assert table.row_count == 0


def test_duplicate_pk_rejected():
    table = sample_table()
    table.index_insert([1, 2, "x"], (0, 0))
    with pytest.raises(QueryError, match="duplicate"):
        table.index_insert([1, 2, "y"], (0, 1))


def test_secondary_index_prefix_scan():
    table = sample_table()
    table.add_secondary_index("by_c", ["c"])
    table.index_insert([1, 1, "apple"], (0, 0))
    table.index_insert([1, 2, "apple"], (0, 1))
    table.index_insert([1, 3, "banana"], (0, 2))
    hits = list(table.lookup_secondary("by_c", ("apple",)))
    assert len(hits) == 2
    assert {loc for _, loc in hits} == {(0, 0), (0, 1)}


def test_secondary_index_updated_on_value_change():
    table = sample_table()
    table.add_secondary_index("by_c", ["c"])
    table.index_insert([1, 1, "old"], (0, 0))
    table.index_update([1, 1, "old"], [1, 1, "new"], (0, 0))
    assert list(table.lookup_secondary("by_c", ("old",))) == []
    assert len(list(table.lookup_secondary("by_c", ("new",)))) == 1


def test_reindex_row_moves_locators():
    table = sample_table()
    table.add_secondary_index("by_c", ["c"])
    table.index_insert([1, 1, "x"], (0, 0))
    table.reindex_row([1, 1, "x"], [1, 1, "x"], (5, 7))
    assert table.lookup((1, 1)) == (5, 7)
    assert next(table.lookup_secondary("by_c", ("x",)))[1] == (5, 7)


def test_pk_update_rejected():
    table = sample_table()
    table.index_insert([1, 1, "x"], (0, 0))
    with pytest.raises(QueryError):
        table.index_update([1, 1, "x"], [2, 1, "x"], (0, 0))


def test_page_allocation_and_hints():
    table = sample_table()
    first = table.allocate_page()
    second = table.allocate_page()
    assert (first, second) == (0, 1)
    table.note_page(1, free_bytes=500)
    assert table.choose_page_for_insert(400) == 1
    assert table.choose_page_for_insert(5000) is None


def test_unknown_secondary_index():
    table = sample_table()
    with pytest.raises(QueryError):
        list(table.lookup_secondary("nope", (1,)))


def test_catalog():
    catalog = Catalog()
    schema = Schema([Column("id", INT())])
    t1 = catalog.create_table("one", schema, ["id"])
    t2 = catalog.create_table("two", schema, ["id"])
    assert t1.space_no != t2.space_no
    assert catalog.table("one") is t1
    assert catalog.by_space(t2.space_no) is t2
    assert "one" in catalog
    with pytest.raises(QueryError):
        catalog.create_table("one", schema, ["id"])
    with pytest.raises(QueryError):
        catalog.table("missing")


def test_table_requires_valid_key_columns():
    schema = Schema([Column("id", INT())])
    with pytest.raises(QueryError):
        Table("t", schema, [], 1)
    with pytest.raises(QueryError):
        Table("t", schema, ["nope"], 1)
