"""Tests for the log buffer (group commit) and the buffer pool."""

import pytest

from repro.common import KB, PageId
from repro.engine.bufferpool import BufferPool
from repro.engine.page import Page, PageOp
from repro.engine.wal import LogBuffer, LsnAllocator, RedoRecord, encode_records_size
from repro.sim.core import AllOf, Environment


def record(lsn, txn=1, nbytes=100):
    op = PageOp("insert", slot=0, row=b"x" * nbytes)
    return RedoRecord(lsn=lsn, txn_id=txn, page_id=PageId(1, 1), op=op)


# ---------------------------------------------------------------------------
# LSN allocation
# ---------------------------------------------------------------------------


def test_lsn_allocator_monotonic_byte_offsets():
    alloc = LsnAllocator()
    first = alloc.allocate(100)
    second = alloc.allocate(50)
    assert second == first + 100
    assert alloc.allocate(1) == second + 50


def test_lsn_allocator_advance_to():
    alloc = LsnAllocator()
    alloc.advance_to(5000)
    assert alloc.allocate(10) == 5001
    alloc.advance_to(100)  # never goes backwards
    assert alloc.allocate(10) > 5000


# ---------------------------------------------------------------------------
# Group commit
# ---------------------------------------------------------------------------


def make_log(env, flush_latency=0.001):
    flushes = []

    def flush(records, nbytes):
        flushes.append((env.now, list(records), nbytes))
        yield env.timeout(flush_latency)

    log = LogBuffer(env, flush)
    log.start()
    return log, flushes


def test_submit_and_wait_for_durability():
    env = Environment()
    log, flushes = make_log(env)

    def committer(env):
        done = log.submit([record(10)], wait=True)
        value = yield done
        return (env.now, value)

    proc = env.process(committer(env))
    env.run_until_event(proc)
    now, persistent = proc.value
    assert persistent >= 10
    assert len(flushes) == 1
    assert log.persistent_lsn >= 10


def test_group_commit_batches_concurrent_submitters():
    env = Environment()
    log, flushes = make_log(env, flush_latency=0.010)

    def committer(env, lsn, delay):
        yield env.timeout(delay)
        done = log.submit([record(lsn)], wait=True)
        yield done

    procs = [env.process(committer(env, 10 * (i + 1), 0.0)) for i in range(8)]
    env.run_until_event(AllOf(env, procs))
    # First flush takes whatever was pending; submissions arriving during
    # the 10 ms flush ride the second batch: far fewer flushes than txns.
    assert len(flushes) <= 3
    assert log.records_flushed == 8


def test_nowait_records_ride_along():
    env = Environment()
    log, flushes = make_log(env)
    log.submit([record(10)], wait=False)

    def committer(env):
        done = log.submit([record(20)], wait=True)
        yield done

    proc = env.process(committer(env))
    env.run_until_event(proc)
    assert log.records_flushed == 2


def test_empty_submit_rejected():
    env = Environment()
    log, _ = make_log(env)
    with pytest.raises(ValueError):
        log.submit([], wait=True)


def test_encode_records_size():
    records = [record(1, nbytes=100), record(2, nbytes=50)]
    assert encode_records_size(records) == sum(r.log_bytes for r in records)
    assert records[0].log_bytes > 100


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------


def page(space, number, size=4 * KB):
    return Page(PageId(space, number), size=size)


def test_bufferpool_put_get():
    pool = BufferPool(capacity_bytes=16 * KB, page_size=4 * KB)
    p = page(1, 1)
    pool.put(p)
    assert pool.get(p.page_id) is p
    assert pool.hits == 1
    assert pool.get(PageId(9, 9)) is None
    assert pool.misses == 1


def test_bufferpool_eviction_at_capacity():
    evicted = []
    pool = BufferPool(
        capacity_bytes=8 * KB, page_size=4 * KB, lru_lists=1,
        on_evict=evicted.append,
    )
    p1, p2, p3 = page(1, 1), page(1, 2), page(1, 3)
    pool.put(p1)
    pool.put(p2)
    pool.put(p3)
    assert len(pool) == 2
    assert len(evicted) == 1


def test_bufferpool_lru_order_respects_access():
    pool = BufferPool(capacity_bytes=8 * KB, page_size=4 * KB, lru_lists=1)
    p1, p2, p3 = page(1, 1), page(1, 2), page(1, 3)
    pool.put(p1)
    pool.put(p2)
    pool.get(p1.page_id)  # p1 now MRU; p2 is LRU
    pool.put(p3)
    assert p1.page_id in pool
    assert p2.page_id not in pool


def test_bufferpool_wal_guard_blocks_eviction():
    """Pages whose changes are not durable must not leave the pool."""
    pool = BufferPool(
        capacity_bytes=8 * KB, page_size=4 * KB, lru_lists=1,
        can_evict=lambda pg: pg.page_lsn <= 100,
    )
    dirty = page(1, 1)
    dirty.page_lsn = 999  # beyond the persistent LSN
    clean = page(1, 2)
    clean.page_lsn = 50
    pool.put(dirty)
    pool.put(clean)
    pool.get(clean.page_id)  # make `dirty` the LRU victim candidate
    pool.put(page(1, 3))
    # `dirty` must be skipped; `clean` is evicted instead despite recency.
    assert dirty.page_id in pool
    assert clean.page_id not in pool


def test_bufferpool_exceeds_capacity_when_nothing_evictable():
    pool = BufferPool(
        capacity_bytes=8 * KB, page_size=4 * KB, lru_lists=1,
        can_evict=lambda pg: False,
    )
    for number in range(4):
        pool.put(page(1, number))
    assert len(pool) == 4  # over capacity, by design
    assert pool.evictions == 0


def test_bufferpool_drop_without_hook():
    evicted = []
    pool = BufferPool(
        capacity_bytes=16 * KB, page_size=4 * KB, on_evict=evicted.append
    )
    p = page(1, 1)
    pool.put(p)
    pool.drop(p.page_id)
    assert p.page_id not in pool
    assert not evicted


def test_bufferpool_clear():
    pool = BufferPool(capacity_bytes=16 * KB, page_size=4 * KB)
    pool.put(page(1, 1))
    pool.put(page(1, 2))
    pool.clear()
    assert len(pool) == 0


def test_bufferpool_hit_ratio():
    pool = BufferPool(capacity_bytes=16 * KB, page_size=4 * KB)
    p = page(1, 1)
    pool.put(p)
    pool.get(p.page_id)
    pool.get(PageId(2, 2))
    assert pool.hit_ratio == pytest.approx(0.5)


def test_bufferpool_validation():
    with pytest.raises(ValueError):
        BufferPool(capacity_bytes=100, page_size=4 * KB)
    with pytest.raises(ValueError):
        BufferPool(capacity_bytes=16 * KB, page_size=4 * KB, lru_lists=0)
