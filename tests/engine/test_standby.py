"""Tests for the read-only standby replica (paper future work #2)."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.common import KB, MB
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.engine.dbengine import EngineConfig
from repro.engine.standby import StandbyReplica


def build(kind="astore_ebp", **kwargs):
    factory = getattr(DeploymentConfig, kind)
    dep = Deployment(factory(seed=19, **kwargs))
    dep.start()
    engine = dep.engine
    table = engine.create_table(
        "kv",
        Schema([Column("k", INT()), Column("tag", INT()), Column("v", VARCHAR(40))]),
        ["k"],
    )
    table.add_secondary_index("by_tag", ["tag"])
    return dep


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


def make_standby(dep, **kwargs):
    standby = StandbyReplica(dep.env, dep.engine, **kwargs)
    standby.start()
    return standby


def test_standby_applies_primary_inserts():
    dep = build()
    standby = make_standby(dep)
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        for i in range(40):
            yield from engine.insert(txn, "kv", [i, i % 4, "v%d" % i])
        yield from engine.commit(txn)
        yield env.timeout(0.05)  # replication lag
        return (yield from standby.read_row("kv", (17,)))

    row = run(dep, work(dep.env))
    assert row == [17, 1, "v17"]
    assert standby.records_applied > 40
    assert standby.catalog.table("kv").row_count == 40


def test_standby_sees_updates_and_deletes():
    dep = build()
    standby = make_standby(dep)
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        yield from engine.insert(txn, "kv", [1, 0, "original"])
        yield from engine.insert(txn, "kv", [2, 0, "doomed"])
        yield from engine.commit(txn)
        txn = engine.begin()
        yield from engine.update(txn, "kv", (1,), {"v": "changed"})
        yield from engine.delete(txn, "kv", (2,))
        yield from engine.commit(txn)
        yield env.timeout(0.05)
        one = yield from standby.read_row("kv", (1,))
        two = yield from standby.read_row("kv", (2,))
        return one, two

    one, two = run(dep, work(dep.env))
    assert one == [1, 0, "changed"]
    assert two is None
    assert standby.catalog.table("kv").row_count == 1


def test_standby_secondary_index_maintained():
    dep = build()
    standby = make_standby(dep)
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        for i in range(20):
            yield from engine.insert(txn, "kv", [i, i % 4, "v%d" % i])
        yield from engine.commit(txn)
        txn = engine.begin()
        yield from engine.update(txn, "kv", (3,), {"tag": 99})
        yield from engine.commit(txn)
        yield env.timeout(0.05)
        table = standby.catalog.table("kv")
        hits_old = [k for k, _ in table.lookup_secondary("by_tag", (3,))]
        hits_new = [k for k, _ in table.lookup_secondary("by_tag", (99,))]
        return hits_old, hits_new

    hits_old, hits_new = run(dep, work(dep.env))
    assert all(k[-1] != 3 for k in hits_old)  # key 3 moved off tag 3
    assert len(hits_new) == 1 and hits_new[0][-1] == 3


def test_standby_ignores_rolled_back_txn():
    dep = build()
    standby = make_standby(dep)
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        yield from engine.insert(txn, "kv", [1, 0, "kept"])
        yield from engine.commit(txn)
        ghost = engine.begin()
        yield from engine.insert(ghost, "kv", [2, 0, "ghost"])
        yield from engine.rollback(ghost)
        yield env.timeout(0.05)
        one = yield from standby.read_row("kv", (1,))
        two = yield from standby.read_row("kv", (2,))
        return one, two

    one, two = run(dep, work(dep.env))
    assert one == [1, 0, "kept"]
    # The insert and its CLR both replayed: net zero.
    assert two is None


def test_standby_lag_is_visible_and_shrinks():
    dep = build()
    standby = make_standby(dep)
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        for i in range(30):
            yield from engine.insert(txn, "kv", [i, 0, "v"])
        yield from engine.commit(txn)
        lag_just_after = standby.lag_lsn
        yield env.timeout(0.1)
        return lag_just_after, standby.lag_lsn

    _lag_before, lag_after = run(dep, work(dep.env))
    assert lag_after == 0  # caught up


def test_standby_reads_use_shared_ebp():
    dep = build(
        engine=EngineConfig(buffer_pool_bytes=8 * 16 * KB),
        ebp_capacity_bytes=32 * MB,
    )
    engine = dep.engine
    # Load wide rows through the primary WITHOUT a standby subscribed, so
    # the standby later has no local page images and must hit EBP.
    wide = engine.create_table(
        "wide",
        Schema([Column("k", INT()), Column("pad", VARCHAR(2100))]),
        ["k"],
    )

    def load(env):
        for chunk in range(0, 120, 40):
            txn = engine.begin()
            for i in range(chunk, chunk + 40):
                yield from engine.insert(txn, "wide", [i, "p" * 2048])
            yield from engine.commit(txn)
        yield env.timeout(0.2)

    run(dep, load(dep.env))
    assert len(dep.ebp.index) > 0
    standby = StandbyReplica(dep.env, engine, use_ebp=True)
    # Not started: no REDO subscription, so pages must come from EBP/PS.
    hits_before = dep.ebp.hits

    def read(env):
        table = standby.catalog.table("wide")
        # The standby has no indexes (never subscribed): read via primary
        # locator but through the standby's page path.
        primary_table = engine.catalog.table("wide")
        locator = primary_table.lookup((5,))
        page = yield from standby.fetch_page(
            primary_table.page_id(locator[0])
        )
        return page.get(locator[1])

    raw = run(dep, read(dep.env))
    assert raw is not None
    assert dep.ebp.hits >= hits_before  # EBP served (or PageStore fallback)


def test_standby_works_on_stock_deployment_too():
    dep = build(kind="stock")
    standby = make_standby(dep)
    engine = dep.engine

    def work(env):
        txn = engine.begin()
        yield from engine.insert(txn, "kv", [7, 1, "ssd-path"])
        yield from engine.commit(txn)
        yield env.timeout(0.05)
        return (yield from standby.read_row("kv", (7,)))

    assert run(dep, work(dep.env)) == [7, 1, "ssd-path"]


def test_standby_ebp_miss_after_astore_death_falls_back_to_pagestore():
    # Satellite of the serving layer: when AStore dies, a standby EBP
    # miss must ride the primary's graceful-degradation read path
    # (PageStore force-ship + retry) instead of failing the read.
    dep = build(engine=EngineConfig(buffer_pool_bytes=8 * 16 * KB))
    engine = dep.engine

    def load(env):
        txn = engine.begin()
        for i in range(40):
            yield from engine.insert(txn, "kv", [i, 0, "v%d" % i])
        yield from engine.commit(txn)
        yield env.timeout(0.2)  # ship everything to PageStore

    run(dep, load(dep.env))
    # Fresh standby with NO local pages and no subscription: every read
    # must fetch pages remotely.
    standby = StandbyReplica(dep.env, engine, use_ebp=True,
                             buffer_pool_bytes=64 * KB)
    for server in dep.astore.servers.values():
        server.crash()
    reads_before = dep.pagestore.page_reads

    def read(env):
        primary_table = engine.catalog.table("kv")
        locator = primary_table.lookup((11,))
        page = yield from standby.fetch_page(
            primary_table.page_id(locator[0])
        )
        return primary_table.schema.decode(page.get(locator[1]))

    row = run(dep, read(dep.env))
    assert row == [11, 0, "v11"]
    assert dep.pagestore.page_reads > reads_before


def test_standby_crash_loses_state_and_recover_rebuilds():
    dep = build()
    standby = make_standby(dep)
    engine = dep.engine

    def phase1(env):
        txn = engine.begin()
        for i in range(30):
            yield from engine.insert(txn, "kv", [i, i % 4, "v%d" % i])
        yield from engine.commit(txn)
        yield env.timeout(0.05)

    run(dep, phase1(dep.env))
    assert standby.applied_lsn > 0

    standby.crash()
    assert not standby.alive
    assert standby.epoch == 1
    assert standby.applied_lsn == 0
    assert standby.pages == {}
    assert standby.catalog.table("kv").lookup((5,)) is None

    # Writes that land WHILE the standby is down must be visible after
    # recovery (they are part of the PageStore scan, not the feed).
    def while_down(env):
        txn = engine.begin()
        yield from engine.update(txn, "kv", (5,), {"v": "post-crash"})
        yield from engine.insert(txn, "kv", [100, 0, "new"])
        yield from engine.commit(txn)
        yield env.timeout(0.02)

    run(dep, while_down(dep.env))

    pages_scanned = run(dep, standby.recover())
    assert pages_scanned > 0
    assert standby.alive
    assert standby.recoveries == 1
    assert standby.applied_lsn > 0

    def verify(env):
        yield env.timeout(0.05)
        five = yield from standby.read_row("kv", (5,))
        hundred = yield from standby.read_row("kv", (100,))
        return five, hundred

    five, hundred = run(dep, verify(dep.env))
    assert five == [5, 1, "post-crash"]
    assert hundred == [100, 0, "new"]


def test_standby_keeps_applying_after_recovery():
    dep = build()
    standby = make_standby(dep)
    engine = dep.engine

    def phase1(env):
        txn = engine.begin()
        for i in range(20):
            yield from engine.insert(txn, "kv", [i, 0, "v"])
        yield from engine.commit(txn)
        yield env.timeout(0.05)

    run(dep, phase1(dep.env))
    standby.crash()
    run(dep, standby.recover())
    applied_at_recovery = standby.applied_lsn

    # The feed resumes: post-recovery commits replay incrementally (no
    # second PageStore scan) and secondary indexes stay correct.
    def phase2(env):
        txn = engine.begin()
        yield from engine.update(txn, "kv", (3,), {"tag": 42})
        yield from engine.insert(txn, "kv", [55, 42, "late"])
        yield from engine.commit(txn)
        yield env.timeout(0.05)
        three = yield from standby.read_row("kv", (3,))
        hits = standby.catalog.table("kv").lookup_secondary("by_tag", (42,))
        return three, sorted(k[-1] for k, _ in hits)

    three, tagged = run(dep, phase2(dep.env))
    assert three[1] == 42
    assert tagged == [3, 55]
    assert standby.applied_lsn > applied_at_recovery
    assert standby.recoveries == 1
