"""B+-tree tests, including model-based property checks against a dict."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.btree import BPlusTree


def test_empty_tree():
    tree = BPlusTree(order=4)
    assert len(tree) == 0
    assert tree.get(1) is None
    assert 1 not in tree
    assert tree.min_key() is None
    assert tree.max_key() is None
    assert list(tree.items()) == []


def test_insert_and_get():
    tree = BPlusTree(order=4)
    tree.insert(5, "five")
    tree.insert(1, "one")
    tree.insert(9, "nine")
    assert tree.get(5) == "five"
    assert tree.get(1) == "one"
    assert tree.get(2) is None
    assert len(tree) == 3


def test_insert_overwrites():
    tree = BPlusTree(order=4)
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert tree.get(1) == "b"
    assert len(tree) == 1


def test_splits_preserve_order():
    tree = BPlusTree(order=4)
    for i in range(200):
        tree.insert(i * 7 % 200, i)
    keys = [k for k, _ in tree.items()]
    assert keys == sorted(keys)
    assert len(keys) == 200
    assert tree.height > 1


def test_delete():
    tree = BPlusTree(order=4)
    for i in range(50):
        tree.insert(i, i)
    assert tree.delete(25)
    assert not tree.delete(25)
    assert tree.get(25) is None
    assert len(tree) == 49


def test_delete_everything_then_reuse():
    tree = BPlusTree(order=4)
    for i in range(100):
        tree.insert(i, i)
    for i in range(100):
        assert tree.delete(i)
    assert len(tree) == 0
    tree.insert(42, "back")
    assert tree.get(42) == "back"


def test_range_scan_half_open():
    tree = BPlusTree(order=4)
    for i in range(0, 100, 2):
        tree.insert(i, i * 10)
    result = list(tree.range(10, 20))
    assert [k for k, _ in result] == [10, 12, 14, 16, 18]
    result = list(tree.range(10, 20, include_high=True))
    assert [k for k, _ in result] == [10, 12, 14, 16, 18, 20]


def test_range_scan_open_ends():
    tree = BPlusTree(order=4)
    for i in range(10):
        tree.insert(i, i)
    assert [k for k, _ in tree.range(None, 3)] == [0, 1, 2]
    assert [k for k, _ in tree.range(7, None)] == [7, 8, 9]
    assert [k for k, _ in tree.range()] == list(range(10))


def test_range_with_missing_boundaries():
    tree = BPlusTree(order=4)
    for i in range(0, 100, 10):
        tree.insert(i, i)
    assert [k for k, _ in tree.range(15, 45)] == [20, 30, 40]


def test_tuple_keys():
    tree = BPlusTree(order=4)
    tree.insert((1, 2), "a")
    tree.insert((1, 1), "b")
    tree.insert((2, 0), "c")
    assert [k for k, _ in tree.items()] == [(1, 1), (1, 2), (2, 0)]
    assert [k for k, _ in tree.range((1, 0), (2, 0))] == [(1, 1), (1, 2)]


def test_min_max_keys():
    tree = BPlusTree(order=4)
    for i in [5, 3, 8, 1, 9]:
        tree.insert(i, i)
    assert tree.min_key() == 1
    assert tree.max_key() == 9


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(min_value=0, max_value=300),
        ),
        max_size=400,
    ),
    order=st.sampled_from([4, 5, 8, 64]),
)
@settings(max_examples=40, deadline=None)
def test_btree_matches_dict_model(ops, order):
    """Model-based property: the tree behaves exactly like a dict, and
    iteration stays sorted through any operation sequence."""
    tree = BPlusTree(order=order)
    model = {}
    for kind, key in ops:
        if kind == "insert":
            tree.insert(key, key * 2)
            model[key] = key * 2
        elif kind == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())


@given(
    keys=st.lists(st.integers(min_value=0, max_value=10000), min_size=1, max_size=300),
    low=st.integers(min_value=0, max_value=10000),
    span=st.integers(min_value=0, max_value=3000),
)
@settings(max_examples=30, deadline=None)
def test_range_scan_matches_model(keys, low, span):
    tree = BPlusTree(order=8)
    for k in keys:
        tree.insert(k, k)
    high = low + span
    expected = sorted(k for k in set(keys) if low <= k < high)
    assert [k for k, _ in tree.range(low, high)] == expected
