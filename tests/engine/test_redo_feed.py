"""Tests for the incremental REDO feed (push) vs full-rescan polling."""

from repro import Deployment, DeploymentConfig
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.engine.dbengine import DBEngine
from repro.engine.standby import StandbyReplica


def build():
    dep = Deployment(DeploymentConfig.astore_ebp(seed=19))
    dep.start()
    engine = dep.engine
    engine.create_table(
        "kv",
        Schema([Column("k", INT()), Column("v", VARCHAR(40))]),
        ["k"],
    )
    return dep


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


def capture_batches(standby, lsns):
    """Record every LSN the standby applies, in application order."""
    original = standby._next_batch

    def wrapped():
        batch = original()
        lsns.extend(record.lsn for record in batch)
        return batch

    standby._next_batch = wrapped


def test_feed_applies_identical_lsn_sequence_as_rescan():
    dep = build()
    engine = dep.engine
    fed = StandbyReplica(dep.env, engine, use_feed=True)
    polled = StandbyReplica(dep.env, engine, use_feed=False)
    fed.start()
    polled.start()
    fed_lsns, polled_lsns = [], []
    capture_batches(fed, fed_lsns)
    capture_batches(polled, polled_lsns)

    def work(env):
        for wave in range(6):
            txn = engine.begin()
            for i in range(10):
                yield from engine.insert(
                    txn, "kv", [wave * 10 + i, "w%d" % wave])
            yield from engine.commit(txn)
            yield env.timeout(0.01)
        yield env.timeout(0.05)

    run(dep, work(dep.env))
    assert fed._feed is not None and polled._feed is None
    assert fed_lsns and fed_lsns == polled_lsns
    assert fed.applied_lsn == polled.applied_lsn
    assert fed.records_applied == polled.records_applied
    assert fed._feed.published > 0
    # One initial sync rescan (the feed subscribes stale), then pure push.
    assert fed.feed_rescans == 1
    for key in (0, 35, 59):
        a = run(dep, fed.read_row("kv", (key,)))
        b = run(dep, polled.read_row("kv", (key,)))
        assert a == b and a is not None


def test_feed_crash_recover_rejoins_via_rescan():
    dep = build()
    engine = dep.engine
    standby = StandbyReplica(dep.env, engine, use_feed=True)
    standby.start()

    def phase(env, base):
        txn = engine.begin()
        for i in range(20):
            yield from engine.insert(txn, "kv", [base + i, "v"])
        yield from engine.commit(txn)
        yield env.timeout(0.05)

    run(dep, phase(dep.env, 0))
    rescans_before = standby.feed_rescans
    standby.crash()
    assert standby._feed.stale  # crash poisons the cursor
    assert len(standby._feed.store) == 0

    run(dep, phase(dep.env, 100))  # lands while the standby is down
    run(dep, standby.recover())
    run(dep, phase(dep.env, 200))  # applied via the feed after rejoin

    assert standby.feed_rescans > rescans_before
    for key in (5, 105, 205):
        row = run(dep, standby.read_row("kv", (key,)))
        assert row == [key, "v"]
    polled = StandbyReplica(dep.env, engine, use_feed=False)
    polled.start()

    def settle(env):
        yield env.timeout(0.05)

    run(dep, settle(dep.env))
    assert polled.applied_lsn == standby.applied_lsn


def test_feed_overflow_falls_back_to_rescan():
    dep = build()
    engine = dep.engine
    feed = engine.subscribe_redo(bound=4)
    feed.stale = False  # pretend a subscriber already synced

    def work(env):
        txn = engine.begin()
        for i in range(10):
            yield from engine.insert(txn, "kv", [i, "v"])
        yield from engine.commit(txn)

    run(dep, work(dep.env))
    assert feed.stale  # 10 records overflow the bound of 4
    assert feed.overflows == 1
    assert len(feed.store) == 0  # cleared, subscriber must rescan


def test_serve_report_identical_with_feed_disabled(monkeypatch):
    """Push feed vs rescan polling: byte-identical serving reports under
    replica_crash/replica_restart chaos (incl. rejoin after rebuild)."""
    from repro.frontend.serve import run_serving

    with_feed = run_serving(seed=7, duration=0.25)
    monkeypatch.setattr(DBEngine, "subscribe_redo", None)
    without_feed = run_serving(seed=7, duration=0.25)
    assert with_feed == without_feed
    assert any("crashed replica" in entry
               for entry in with_feed["chaos_log"])
    assert any("restarted replica" in entry
               for entry in with_feed["chaos_log"])
