"""Tests for slotted pages, REDO page ops, and the row codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import KB, PageId, ReproError
from repro.engine.codec import (
    BIGINT,
    DECIMAL,
    FLOAT,
    INT,
    VARCHAR,
    Column,
    Schema,
)
from repro.common import QueryError
from repro.engine.page import (
    PAGE_HEADER_BYTES,
    Page,
    PageFullError,
    PageOp,
    apply_op,
)


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------


def sample_schema():
    return Schema(
        [
            Column("id", INT()),
            Column("big", BIGINT()),
            Column("price", DECIMAL(2)),
            Column("ratio", FLOAT()),
            Column("name", VARCHAR(40), nullable=True),
        ]
    )


def test_codec_roundtrip():
    schema = sample_schema()
    row = [7, 2**40, 19.99, 0.5, "widget"]
    assert schema.decode(schema.encode(row)) == row


def test_codec_null_handling():
    schema = sample_schema()
    row = [1, 2, 3.5, 1.0, None]
    assert schema.decode(schema.encode(row)) == row


def test_codec_null_in_non_nullable_rejected():
    schema = sample_schema()
    with pytest.raises(QueryError):
        schema.encode([None, 2, 3.0, 1.0, "x"])


def test_codec_varchar_too_long_rejected():
    schema = sample_schema()
    with pytest.raises(QueryError):
        schema.encode([1, 2, 3.0, 1.0, "y" * 100])


def test_codec_wrong_arity_rejected():
    schema = sample_schema()
    with pytest.raises(QueryError):
        schema.encode([1, 2])


def test_schema_duplicate_columns_rejected():
    with pytest.raises(QueryError):
        Schema([Column("a", INT()), Column("a", INT())])


def test_schema_position_and_names():
    schema = sample_schema()
    assert schema.position("price") == 2
    assert schema.names[0] == "id"
    with pytest.raises(QueryError):
        schema.position("nope")


def test_decimal_is_exact():
    schema = Schema([Column("amount", DECIMAL(2))])
    encoded = schema.encode([0.1 + 0.2])  # 0.30000000000000004
    assert schema.decode(encoded) == [0.3]


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-(2**31), max_value=2**31 - 1),
            st.integers(min_value=-(2**62), max_value=2**62 - 1),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            st.text(max_size=40),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50)
def test_codec_roundtrip_property(rows):
    schema = Schema(
        [
            Column("a", INT()),
            Column("b", BIGINT()),
            Column("c", FLOAT()),
            Column("d", VARCHAR(0)),
        ]
    )
    for row in rows:
        decoded = schema.decode(schema.encode(list(row)))
        assert decoded[0] == row[0]
        assert decoded[1] == row[1]
        assert decoded[2] == pytest.approx(row[2])
        assert decoded[3] == row[3]


# ---------------------------------------------------------------------------
# Pages
# ---------------------------------------------------------------------------


def make_page(size=4 * KB):
    return Page(PageId(1, 1), size=size)


def test_page_insert_and_get():
    page = make_page()
    apply_op(page, PageOp("insert", slot=0, row=b"hello"), lsn=10)
    assert page.get(0) == b"hello"
    assert page.page_lsn == 10
    assert page.row_count == 1


def test_page_used_bytes_accounting():
    page = make_page()
    base = page.used_bytes
    assert base == PAGE_HEADER_BYTES
    apply_op(page, PageOp("insert", slot=0, row=b"x" * 100), lsn=1)
    grew = page.used_bytes - base
    assert grew == 100 + 8  # row + slot overhead
    apply_op(page, PageOp("delete", slot=0), lsn=2)
    assert page.used_bytes == base


def test_page_update_changes_bytes():
    page = make_page()
    apply_op(page, PageOp("insert", slot=0, row=b"short"), lsn=1)
    used = page.used_bytes
    apply_op(page, PageOp("update", slot=0, row=b"much longer row"), lsn=2)
    assert page.used_bytes == used + len(b"much longer row") - len(b"short")
    assert page.get(0) == b"much longer row"


def test_page_full_rejected():
    page = make_page(size=256)
    with pytest.raises(PageFullError):
        apply_op(page, PageOp("insert", slot=0, row=b"z" * 300), lsn=1)


def test_page_ops_are_idempotent_by_lsn():
    page = make_page()
    op = PageOp("insert", slot=0, row=b"once")
    apply_op(page, op, lsn=5)
    apply_op(page, op, lsn=5)  # replay: skipped by page-LSN test
    assert page.row_count == 1


def test_stale_op_skipped():
    page = make_page()
    apply_op(page, PageOp("insert", slot=0, row=b"v2"), lsn=10)
    apply_op(page, PageOp("update", slot=0, row=b"v1"), lsn=5)  # older
    assert page.get(0) == b"v2"


def test_double_insert_same_slot_rejected():
    page = make_page()
    apply_op(page, PageOp("insert", slot=0, row=b"a"), lsn=1)
    with pytest.raises(ReproError):
        apply_op(page, PageOp("insert", slot=0, row=b"b"), lsn=2)


def test_update_empty_slot_rejected():
    page = make_page()
    with pytest.raises(ReproError):
        apply_op(page, PageOp("update", slot=3, row=b"x"), lsn=1)


def test_delete_empty_slot_rejected():
    page = make_page()
    with pytest.raises(ReproError):
        apply_op(page, PageOp("delete", slot=3), lsn=1)


def test_format_resets_page():
    page = make_page()
    apply_op(page, PageOp("insert", slot=0, row=b"a"), lsn=1)
    apply_op(page, PageOp("format"), lsn=2)
    assert page.row_count == 0
    assert page.used_bytes == PAGE_HEADER_BYTES
    assert page.page_lsn == 2


def test_clone_is_deep():
    page = make_page()
    apply_op(page, PageOp("insert", slot=0, row=b"orig"), lsn=1)
    clone = page.clone()
    apply_op(page, PageOp("update", slot=0, row=b"mutated"), lsn=2)
    assert clone.get(0) == b"orig"
    assert not clone.same_content(page)


def test_invalid_op_kind_rejected():
    with pytest.raises(ValueError):
        PageOp("truncate")


def test_insert_requires_row():
    with pytest.raises(ValueError):
        PageOp("insert", slot=0)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.binary(min_size=1, max_size=50),
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=40)
def test_engine_and_replay_converge_property(ops):
    """The core log-is-database property: applying the same REDO stream to
    a fresh page reproduces the engine's page exactly."""
    engine_page = Page(PageId(2, 9), size=64 * KB)
    log = []
    lsn = 0
    slots_in_use = set()
    for kind, row in ops:
        lsn += 1
        if kind == "insert":
            op = PageOp("insert", slot=engine_page.allocate_slot(), row=row)
        elif kind == "update":
            if not slots_in_use:
                continue
            op = PageOp("update", slot=sorted(slots_in_use)[0], row=row)
        else:
            if not slots_in_use:
                continue
            op = PageOp("delete", slot=sorted(slots_in_use)[-1])
        apply_op(engine_page, op, lsn)
        log.append((lsn, op))
        if op.kind == "insert":
            slots_in_use.add(op.slot)
        elif op.kind == "delete":
            slots_in_use.discard(op.slot)

    replayed = Page(PageId(2, 9), size=64 * KB)
    for lsn, op in log:
        apply_op(replayed, op, lsn)
    assert replayed.same_content(engine_page)
    assert replayed.used_bytes == engine_page.used_bytes
