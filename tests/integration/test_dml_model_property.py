"""Model-based property test: the full veDB stack vs a Python dict.

A random DML sequence runs through the complete system (engine + AStore
log + EBP + PageStore) and, in parallel, through a plain dict model.  At
every read the two must agree; after a crash + ARIES recovery the whole
table must equal the model exactly.  This is the strongest end-to-end
correctness property the reproduction asserts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Deployment, DeploymentConfig
from repro.common import KB, MB
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.engine.dbengine import EngineConfig


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "read", "abort_txn"]),
        st.integers(min_value=0, max_value=30),
        st.text(
            alphabet="abcdefghij", min_size=0, max_size=12
        ),
    ),
    min_size=5,
    max_size=60,
)


@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=12, deadline=None)
def test_engine_matches_dict_model_and_survives_crash(ops, seed):
    dep = Deployment(
        DeploymentConfig.astore_ebp(
            seed=seed,
            # Tiny buffer pool: force real EBP/PageStore traffic.
            engine=EngineConfig(buffer_pool_bytes=4 * 16 * KB),
            ebp_capacity_bytes=8 * MB,
        )
    )
    dep.start()
    engine = dep.engine
    engine.create_table(
        "t",
        Schema([Column("k", INT()), Column("v", VARCHAR(64))]),
        ["k"],
    )
    model = {}

    def work(env):
        for kind, key, value in ops:
            if kind == "insert":
                if key in model:
                    continue
                txn = engine.begin()
                yield from engine.insert(txn, "t", [key, value])
                yield from engine.commit(txn)
                model[key] = value
            elif kind == "update":
                if key not in model:
                    continue
                txn = engine.begin()
                yield from engine.update(txn, "t", (key,), {"v": value})
                yield from engine.commit(txn)
                model[key] = value
            elif kind == "delete":
                if key not in model:
                    continue
                txn = engine.begin()
                yield from engine.delete(txn, "t", (key,))
                yield from engine.commit(txn)
                del model[key]
            elif kind == "read":
                row = yield from engine.read_row(None, "t", (key,))
                expected = model.get(key)
                assert (row[1] if row else None) == expected
            elif kind == "abort_txn":
                # A rolled-back txn must leave no trace.
                txn = engine.begin()
                if key in model:
                    yield from engine.update(txn, "t", (key,), {"v": "GHOST"})
                ghost_key = key + 1000
                yield from engine.insert(txn, "t", [ghost_key, "GHOST"])
                yield from engine.rollback(txn)
        yield env.timeout(0.05)  # drain shipping before any crash

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)

    # Verify the full table against the model.
    def verify(env):
        for key, expected in model.items():
            row = yield from engine.read_row(None, "t", (key,))
            assert row is not None and row[1] == expected, key
        table = engine.catalog.table("t")
        assert table.row_count == len(model)
        return True

    proc = dep.env.process(verify(dep.env))
    dep.env.run_until_event(proc)

    # Crash, recover, verify again.
    engine.crash()

    def recover_and_verify(env):
        yield from engine.recover()
        for key, expected in model.items():
            row = yield from engine.read_row(None, "t", (key,))
            assert row is not None and row[1] == expected, (
                "post-recovery mismatch for key %r" % key
            )
        table = engine.catalog.table("t")
        assert table.row_count == len(model)
        return True

    proc = dep.env.process(recover_and_verify(dep.env))
    dep.env.run_until_event(proc)
