"""Chaos integration tests: scheduled failures under live TPC-C traffic."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.harness.chaos import ChaosEvent, ChaosInjector, ChaosSchedule
from repro.harness.stats import collect_stats, format_stats
from repro.sim.core import AllOf
from repro.workloads.tpcc import TpccClient, TpccConfig, TpccDatabase


SMALL = TpccConfig(
    warehouses=2, districts_per_warehouse=3, customers_per_district=8, items=30
)


def build(**kwargs):
    dep = Deployment(DeploymentConfig.astore_ebp(seed=47, astore_servers=4,
                                                 **kwargs))
    dep.start()
    database = TpccDatabase(dep.engine, SMALL, dep.seeds.stream("load"))
    proc = dep.env.process(database.load())
    dep.env.run_until_event(proc)
    return dep, database


def drive(dep, database, clients, duration):
    terminals = [
        TpccClient(database, dep.seeds.stream("c%d" % i)) for i in range(clients)
    ]
    procs = [dep.env.process(t.run_for(duration)) for t in terminals]
    dep.env.run_until_event(AllOf(dep.env, procs))
    return terminals


def check_ytd(dep):
    def work(env):
        for w_id in range(1, SMALL.warehouses + 1):
            warehouse = yield from dep.engine.read_row(None, "warehouse", (w_id,))
            total = 0.0
            for d_id in range(1, SMALL.districts_per_warehouse + 1):
                district = yield from dep.engine.read_row(
                    None, "district", (w_id, d_id)
                )
                total += district[6]
            assert warehouse[7] == pytest.approx(total, abs=0.01)
        return True

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)
    return proc.value


def test_chaos_schedule_validation():
    with pytest.raises(ValueError):
        ChaosEvent(0.1, "meteor_strike")
    with pytest.raises(ValueError):
        ChaosEvent(-1.0, "astore_crash")
    schedule = ChaosSchedule().add(0.2, "astore_crash", "astore-0")
    schedule.add(0.1, "network_spike", duration=0.05)
    assert [e.kind for e in schedule.sorted_events()] == [
        "network_spike", "astore_crash",
    ]


def test_tpcc_survives_astore_crash_restart_cycle():
    dep, database = build()
    schedule = (
        ChaosSchedule()
        .add(0.05, "astore_crash", "astore-0")
        .add(0.20, "astore_restart", "astore-0")
        .add(0.22, "astore_reclaim", "astore-0")
    )
    injector = ChaosInjector(dep, schedule)
    injector.start()
    terminals = drive(dep, database, clients=6, duration=0.35)
    committed = sum(t.committed for t in terminals)
    assert committed > 50
    assert check_ytd(dep)
    assert any("crashed AStore" in line for line in injector.log)
    assert any("restarted AStore" in line for line in injector.log)


def test_tpcc_survives_pagestore_outage():
    dep, database = build()
    victim = dep.pagestore.servers[0].server_id
    schedule = (
        ChaosSchedule()
        .add(0.05, "pagestore_crash", victim)
        .add(0.25, "pagestore_restart", victim)
    )
    ChaosInjector(dep, schedule).start()
    terminals = drive(dep, database, clients=6, duration=0.35)
    assert sum(t.committed for t in terminals) > 50
    assert check_ytd(dep)


def test_tpcc_survives_network_spike_window():
    dep, database = build()
    schedule = ChaosSchedule().add(
        0.05, "network_spike", duration=0.1, factor=50.0
    )
    injector = ChaosInjector(dep, schedule)
    injector.start()
    terminals = drive(dep, database, clients=6, duration=0.3)
    assert sum(t.committed for t in terminals) > 30
    assert check_ytd(dep)
    # The spike window must have been reverted.
    assert dep.pagestore.network.spike_probability < 0.1


def test_stats_report_covers_all_components():
    dep, database = build()
    drive(dep, database, clients=4, duration=0.1)
    stats = collect_stats(dep)
    assert stats["engine"]["committed"] > 0
    assert stats["buffer_pool"]["hits"] > 0
    assert "ebp" in stats
    assert "astore" in stats
    assert "segment_ring" in stats
    assert stats["pagestore"]["ships"] > 0
    text = format_stats(dep)
    assert "engine.committed" in text
    assert "astore.servers" in text


def test_stats_on_stock_deployment():
    dep = Deployment(DeploymentConfig.stock(seed=3))
    dep.start()
    stats = collect_stats(dep)
    assert "logstore" in stats
    assert "ebp" not in stats
    assert "astore" not in stats
