"""Chaos integration tests: scheduled failures under live TPC-C traffic."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.harness.chaos import ChaosEvent, ChaosInjector, ChaosSchedule
from repro.harness.stats import collect_stats, format_stats
from repro.sim.core import AllOf
from repro.workloads.tpcc import TpccClient, TpccConfig, TpccDatabase


SMALL = TpccConfig(
    warehouses=2, districts_per_warehouse=3, customers_per_district=8, items=30
)


def build(**kwargs):
    dep = Deployment(DeploymentConfig.astore_ebp(seed=47, astore_servers=4,
                                                 **kwargs))
    dep.start()
    database = TpccDatabase(dep.engine, SMALL, dep.seeds.stream("load"))
    proc = dep.env.process(database.load())
    dep.env.run_until_event(proc)
    return dep, database


def drive(dep, database, clients, duration):
    terminals = [
        TpccClient(database, dep.seeds.stream("c%d" % i)) for i in range(clients)
    ]
    procs = [dep.env.process(t.run_for(duration)) for t in terminals]
    dep.env.run_until_event(AllOf(dep.env, procs))
    return terminals


def check_ytd(dep):
    def work(env):
        for w_id in range(1, SMALL.warehouses + 1):
            warehouse = yield from dep.engine.read_row(None, "warehouse", (w_id,))
            total = 0.0
            for d_id in range(1, SMALL.districts_per_warehouse + 1):
                district = yield from dep.engine.read_row(
                    None, "district", (w_id, d_id)
                )
                total += district[6]
            assert warehouse[7] == pytest.approx(total, abs=0.01)
        return True

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)
    return proc.value


def test_chaos_schedule_validation():
    with pytest.raises(ValueError):
        ChaosEvent(0.1, "meteor_strike")
    with pytest.raises(ValueError):
        ChaosEvent(-1.0, "astore_crash")
    schedule = ChaosSchedule().add(0.2, "astore_crash", "astore-0")
    schedule.add(0.1, "network_spike", duration=0.05)
    assert [e.kind for e in schedule.sorted_events()] == [
        "network_spike", "astore_crash",
    ]


def test_tpcc_survives_astore_crash_restart_cycle():
    dep, database = build()
    schedule = (
        ChaosSchedule()
        .add(0.05, "astore_crash", "astore-0")
        .add(0.20, "astore_restart", "astore-0")
        .add(0.22, "astore_reclaim", "astore-0")
    )
    injector = ChaosInjector(dep, schedule)
    injector.start()
    terminals = drive(dep, database, clients=6, duration=0.35)
    committed = sum(t.committed for t in terminals)
    assert committed > 50
    assert check_ytd(dep)
    assert any("crashed AStore" in line for line in injector.log)
    assert any("restarted AStore" in line for line in injector.log)


def test_tpcc_survives_pagestore_outage():
    dep, database = build()
    victim = dep.pagestore.servers[0].server_id
    schedule = (
        ChaosSchedule()
        .add(0.05, "pagestore_crash", victim)
        .add(0.25, "pagestore_restart", victim)
    )
    ChaosInjector(dep, schedule).start()
    terminals = drive(dep, database, clients=6, duration=0.35)
    assert sum(t.committed for t in terminals) > 50
    assert check_ytd(dep)


def test_tpcc_survives_network_spike_window():
    dep, database = build()
    schedule = ChaosSchedule().add(
        0.05, "network_spike", duration=0.1, factor=50.0
    )
    injector = ChaosInjector(dep, schedule)
    injector.start()
    terminals = drive(dep, database, clients=6, duration=0.3)
    assert sum(t.committed for t in terminals) > 30
    assert check_ytd(dep)
    # The spike window must have been reverted.
    assert dep.pagestore.network.spike_probability < 0.1


def test_stats_report_covers_all_components():
    dep, database = build()
    drive(dep, database, clients=4, duration=0.1)
    stats = collect_stats(dep)
    assert stats["engine"]["committed"] > 0
    assert stats["buffer_pool"]["hits"] > 0
    assert "ebp" in stats
    assert "astore" in stats
    assert "segment_ring" in stats
    assert stats["pagestore"]["ships"] > 0
    text = format_stats(dep)
    assert "engine.committed" in text
    assert "astore.servers" in text


def test_stats_on_stock_deployment():
    dep = Deployment(DeploymentConfig.stock(seed=3))
    dep.start()
    stats = collect_stats(dep)
    assert "logstore" in stats
    assert "ebp" not in stats
    assert "astore" not in stats


# ---------------------------------------------------------------------------
# Fault-tolerance layer: new chaos kinds, the seeded monkey, degraded mode
# ---------------------------------------------------------------------------


def test_windowed_chaos_kinds_require_positive_duration():
    with pytest.raises(ValueError):
        ChaosEvent(0.1, "network_spike")  # duration defaults to 0
    with pytest.raises(ValueError):
        ChaosEvent(0.1, "partition", "astore-0", duration=0.0)
    ChaosEvent(0.1, "astore_crash", "astore-0")  # instantaneous kinds: fine


def test_overlapping_spikes_restore_baseline():
    dep = Deployment(DeploymentConfig.astore_ebp(seed=9, astore_servers=4))
    dep.start()
    network = dep.pagestore.network
    baseline = network.spike_probability
    schedule = (
        ChaosSchedule()
        .add(0.01, "network_spike", duration=0.10, factor=10.0)
        .add(0.05, "network_spike", duration=0.10, factor=5.0)
    )
    injector = ChaosInjector(dep, schedule)
    injector.start()
    probes = {}

    def probe(env):
        yield env.timeout(0.08)  # both windows active
        probes["overlap"] = network.spike_probability
        yield env.timeout(0.04)  # first ended, second still active
        probes["tail"] = network.spike_probability
        yield env.timeout(0.20)

    proc = dep.env.process(probe(dep.env))
    dep.env.run_until_event(proc)
    assert probes["overlap"] == pytest.approx(min(1.0, baseline * 50.0))
    assert probes["tail"] == pytest.approx(min(1.0, baseline * 5.0))
    # After both windows close, the baseline is restored exactly.
    assert network.spike_probability == pytest.approx(baseline)


def test_chaos_monkey_schedule_is_seed_deterministic():
    from repro.harness.chaos import ChaosMonkey
    from repro.sim.rand import SeedSequence

    def build(seed):
        rng = SeedSequence(seed).stream("monkey")
        return ChaosMonkey(
            rng, ["astore-%d" % i for i in range(4)], horizon=5.0, cycles=4
        ).build()

    a, b = build(13), build(13)
    assert a.sorted_events() == b.sorted_events()
    kinds = [e.kind for e in a.sorted_events()]
    assert kinds.count("astore_crash") == 4
    assert kinds.count("astore_restart") == 4
    assert "cm_crash" in kinds and "cm_restart" in kinds
    assert "partition" in kinds
    # Every server takes a hit when cycles == len(servers).
    crashed = {e.target for e in a.events if e.kind == "astore_crash"}
    assert len(crashed) == 4
    # A different seed gives a different schedule.
    assert build(14).sorted_events() != a.sorted_events()


def test_tpcc_survives_cm_outage_window():
    dep, database = build()
    schedule = (
        ChaosSchedule()
        .add(0.05, "cm_crash")
        .add(0.20, "cm_restart")
    )
    injector = ChaosInjector(dep, schedule)
    injector.start()
    terminals = drive(dep, database, clients=6, duration=0.35)
    # The CM is control-plane only: one-sided commits keep flowing.
    assert sum(t.committed for t in terminals) > 50
    assert check_ytd(dep)
    assert any("crashed cluster manager" in line for line in injector.log)
    assert dep.astore.cm.alive


def test_tpcc_survives_partition_window():
    dep, database = build()
    victim = "astore-0"
    schedule = ChaosSchedule().add(
        0.05, "partition", victim, duration=4.0, peer="cm"
    )
    injector = ChaosInjector(dep, schedule)
    injector.start()
    terminals = drive(dep, database, clients=4, duration=0.3)
    assert sum(t.committed for t in terminals) > 30
    # Long past the failure timeout: the detector declared the
    # partitioned server failed and rebuilt its routes...
    dep.run_for(5.0)
    assert dep.astore.cm.rebuilds >= 1
    # ...and after the window healed, it rejoined the fleet.
    dep.run_for(2.0)
    assert victim not in dep.astore.cm.failed_servers
    assert dep.astore.servers[victim].reachable_from("cm")
    assert check_ytd(dep)


def test_total_log_outage_parks_commits_in_degraded_mode():
    dep, database = build()
    engine = dep.engine
    observed = {}

    def chaos(env):
        yield env.timeout(0.05)
        for server in dep.astore.servers.values():
            server.crash()
        yield env.timeout(1.0)  # well past several flush attempts
        observed["degraded_during"] = engine.degraded
        for server in dep.astore.servers.values():
            server.restart()

    def late_commit(env):
        # Submitted mid-outage: group commit must park, not error.
        yield env.timeout(0.1)
        client = TpccClient(database, dep.seeds.stream("late-client"))
        txn = engine.begin()
        yield from client.txn_payment(txn)
        yield from engine.commit(txn)
        return True

    dep.env.process(chaos(dep.env))
    proc = dep.env.process(late_commit(dep.env))
    dep.env.run_until_event(proc)
    dep.run_for(2.0)
    # The outage parked group commit (bounded retries), never killed it:
    # once the fleet returned, the commit landed and degraded mode ended.
    assert proc.value is True
    assert observed["degraded_during"] is True
    assert engine.flush_retries >= 1
    assert engine.degraded_episodes >= 1
    assert engine.degraded is False


def test_chaos_soak_smoke_holds_invariants():
    from repro.harness.soak import run_chaos_soak

    report = run_chaos_soak(seed=3, short=True, horizon=0.9, terminals=2)
    assert report["ok"], report["violations"]
    assert report["committed"] > 200
    assert len([l for l in report["chaos_log"] if "crashed AStore" in l]) >= 3
    assert any("cluster manager" in l for l in report["chaos_log"])
    assert any("partitioned" in l for l in report["chaos_log"])
