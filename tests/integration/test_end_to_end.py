"""Full-system integration tests: TPC-C + crashes + failover, end to end."""

import pytest

from repro import Deployment, DeploymentConfig
from repro.common import KB, MB
from repro.engine.dbengine import EngineConfig
from repro.sim.core import AllOf
from repro.workloads.tpcc import TpccClient, TpccConfig, TpccDatabase


SMALL = TpccConfig(
    warehouses=2, districts_per_warehouse=3, customers_per_district=8, items=30
)


def build(config_factory=DeploymentConfig.astore_ebp, seed=31, **kwargs):
    dep = Deployment(config_factory(seed=seed, **kwargs))
    dep.start()
    database = TpccDatabase(dep.engine, SMALL, dep.seeds.stream("load"))
    proc = dep.env.process(database.load())
    dep.env.run_until_event(proc)
    return dep, database


def run_clients(dep, database, count, duration):
    clients = [
        TpccClient(database, dep.seeds.stream("c%d" % i)) for i in range(count)
    ]
    procs = [dep.env.process(c.run_for(duration)) for c in clients]
    dep.env.run_until_event(AllOf(dep.env, procs))
    return clients


def check_ytd_consistency(dep):
    """TPC-C consistency condition 1: W_YTD == sum(D_YTD)."""
    def work(env):
        for w_id in range(1, SMALL.warehouses + 1):
            warehouse = yield from dep.engine.read_row(None, "warehouse", (w_id,))
            total = 0.0
            for d_id in range(1, SMALL.districts_per_warehouse + 1):
                district = yield from dep.engine.read_row(
                    None, "district", (w_id, d_id)
                )
                total += district[6]
            assert warehouse[7] == pytest.approx(total, abs=0.01), (
                "w_ytd mismatch for warehouse %d" % w_id
            )
        return True

    proc = dep.env.process(work(dep.env))
    dep.env.run_until_event(proc)
    return proc.value


def test_tpcc_on_full_astore_ebp_deployment():
    dep, database = build()
    clients = run_clients(dep, database, count=8, duration=0.2)
    committed = sum(c.committed for c in clients)
    assert committed > 50
    assert check_ytd_consistency(dep)


def test_tpcc_crash_recovery_preserves_consistency():
    """Run TPC-C, crash the engine mid-flight, recover, re-check invariants
    and keep running."""
    dep, database = build()
    run_clients(dep, database, count=6, duration=0.15)

    def settle(env):
        yield env.timeout(0.05)  # drain ship queue

    proc = dep.env.process(settle(dep.env))
    dep.env.run_until_event(proc)
    committed_before = dep.engine.committed
    dep.engine.crash()

    def recover(env):
        return (yield from dep.engine.recover())

    proc = dep.env.process(recover(dep.env))
    dep.env.run_until_event(proc)
    assert check_ytd_consistency(dep)
    # The system continues serving transactions after recovery.
    clients = run_clients(dep, database, count=4, duration=0.1)
    assert sum(c.committed for c in clients) > 0
    assert dep.engine.committed > committed_before
    assert check_ytd_consistency(dep)


def test_astore_server_failure_during_tpcc():
    """Crash one of four AStore servers mid-run: commits keep flowing
    (log segments re-placed on healthy nodes), EBP only loses hit ratio."""
    dep, database = build(astore_servers=4)
    clients = [
        TpccClient(database, dep.seeds.stream("c%d" % i)) for i in range(6)
    ]
    procs = [dep.env.process(c.run_for(0.35)) for c in clients]

    def failure_injector(env):
        yield env.timeout(0.1)
        victim = dep.astore.servers["astore-0"]
        victim.crash()
        if dep.ebp is not None:
            dep.ebp.purge_server("astore-0")

    dep.env.process(failure_injector(dep.env))
    dep.env.run_until_event(AllOf(dep.env, procs))
    committed = sum(c.committed for c in clients)
    assert committed > 50  # work continued well past the crash
    assert check_ytd_consistency(dep)


def test_ebp_populates_under_buffer_pressure():
    dep, database = build(
        engine=EngineConfig(buffer_pool_bytes=24 * 16 * KB),
        ebp_capacity_bytes=64 * MB,
    )
    run_clients(dep, database, count=6, duration=0.2)

    def settle(env):
        yield env.timeout(0.1)

    proc = dep.env.process(settle(dep.env))
    dep.env.run_until_event(proc)
    assert len(dep.ebp.index) > 0
    assert dep.ebp.pages_written > 0


def test_stock_and_astore_agree_on_data():
    """The two deployments are behaviourally identical: same workload seed,
    same final database state (timing differs, contents must not)."""
    states = []
    for factory in (DeploymentConfig.stock, DeploymentConfig.astore_log):
        dep, database = build(config_factory=factory, seed=77)
        client = TpccClient(database, dep.seeds.stream("solo"))

        def work(env):
            for _ in range(30):
                yield from client.run_one()

        proc = dep.env.process(work(dep.env))
        dep.env.run_until_event(proc)

        def snapshot(env):
            rows = []
            for w_id in range(1, SMALL.warehouses + 1):
                row = yield from dep.engine.read_row(None, "warehouse", (w_id,))
                rows.append(tuple(row))
            return rows

        proc = dep.env.process(snapshot(dep.env))
        dep.env.run_until_event(proc)
        states.append((client.committed, proc.value))
    # A single-client deterministic workload makes the same decisions on
    # both deployments (the RNG stream is storage-independent).
    assert states[0] == states[1]
