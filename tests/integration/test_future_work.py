"""Tests for the paper's future-work features (Section VIII), which this
reproduction implements as opt-ins:

1. cost-based push-down decisions;
2. buffer-pool warm-up from the EBP after crash recovery;
3. local EBP recovery when a crashed AStore server restarts (PMem
   persistence means its cached pages survived).
"""

import pytest

from repro import Deployment, DeploymentConfig
from repro.common import KB, MB
from repro.engine.codec import INT, VARCHAR, Column, Schema
from repro.engine.dbengine import EngineConfig


def wide_schema():
    return Schema(
        [
            Column("id", INT()),
            Column("v", VARCHAR(32)),
            Column("pad", VARCHAR(2100)),
        ]
    )


def build(rows=240, bp_pages=12, **kwargs):
    dep = Deployment(
        DeploymentConfig.astore_pq(
            seed=5,
            engine=EngineConfig(buffer_pool_bytes=bp_pages * 16 * KB),
            ebp_capacity_bytes=64 * MB,
            **kwargs,
        )
    )
    dep.start()
    engine = dep.engine
    engine.create_table("wide", wide_schema(), ["id"])

    def load(env):
        for chunk in range(0, rows, 60):
            txn = engine.begin()
            for i in range(chunk, min(chunk + 60, rows)):
                yield from engine.insert(txn, "wide", [i, "v%d" % i, "p" * 2048])
            yield from engine.commit(txn)
        yield env.timeout(0.3)

    proc = dep.env.process(load(dep.env))
    dep.env.run_until_event(proc)
    return dep


def run(dep, gen):
    proc = dep.env.process(gen)
    dep.env.run_until_event(proc)
    return proc.value


SCAN_SQL = "SELECT count(*) FROM wide WHERE id >= 0"


# ---------------------------------------------------------------------------
# 1. Cost-based push-down
# ---------------------------------------------------------------------------


def test_cost_based_pq_pushes_large_remote_scans():
    # Big enough that parallel storage-side execution clearly wins.
    dep = build(rows=700, bp_pages=12)
    session = dep.new_session(
        pushdown_row_threshold=10, pushdown_cost_based=True
    )

    def work(env):
        return (yield from session.execute(SCAN_SQL))

    result = run(dep, work(dep.env))
    assert result.rows[0][0] == 700
    assert session.pushdown_runtime.tasks_dispatched > 0
    assert session.pushdown_runtime.cost_rejected == 0


def test_cost_based_pq_rejects_buffer_resident_scans():
    """Once the whole table sits in DRAM, pushing it is a loss; the cost
    model must keep it local, while threshold-only PQ pushes anyway."""
    dep = build(rows=30, bp_pages=64)
    cost_session = dep.new_session(
        pushdown_row_threshold=10, pushdown_cost_based=True
    )
    naive_session = dep.new_session(pushdown_row_threshold=10)

    def work(env):
        # Warm the buffer pool so every page is DRAM-resident.
        yield from naive_session.execute(SCAN_SQL)
        a = yield from cost_session.execute(SCAN_SQL)
        b = yield from naive_session.execute(SCAN_SQL)
        return a, b

    a, b = run(dep, work(dep.env))
    assert a.rows == b.rows
    # All pages in the BP: neither dispatches (nothing remote)...
    assert cost_session.pushdown_runtime.tasks_dispatched == 0

    # ...but with a page or two remote the cost gate (not the planner)
    # makes the call - force that by shrinking residency.
    dep2 = build(rows=240, bp_pages=8)
    cheap = dep2.new_session(pushdown_row_threshold=10, pushdown_cost_based=True)

    def work2(env):
        return (yield from cheap.execute("SELECT count(*) FROM wide WHERE id < 4"))

    result = run(dep2, work2(dep2.env))
    assert result.rows[0][0] == 4


def test_cost_based_equals_threshold_results():
    dep = build()
    cost_session = dep.new_session(
        pushdown_row_threshold=10, pushdown_cost_based=True
    )
    naive_session = dep.new_session(pushdown_row_threshold=10)

    def work(env):
        a = yield from cost_session.execute(SCAN_SQL)
        b = yield from naive_session.execute(SCAN_SQL)
        return a, b

    a, b = run(dep, work(dep.env))
    assert a.rows == b.rows


# ---------------------------------------------------------------------------
# 2. Warm-up from EBP after recovery
# ---------------------------------------------------------------------------


def test_warmup_from_ebp_after_recovery():
    dep = build()
    engine = dep.engine
    engine.crash()

    def recover(env):
        yield from engine.recover()
        # Cold buffer pool right after recovery (only recovery's own reads).
        cold = engine.buffer_pool.used_pages
        warmed = yield from engine.warmup_from_ebp()
        return cold, warmed

    cold, warmed = run(dep, recover(dep.env))
    assert warmed > 0
    assert engine.buffer_pool.used_pages >= warmed


def test_warmup_respects_limit_and_missing_ebp():
    dep = build()
    engine = dep.engine
    engine.crash()

    def recover(env):
        yield from engine.recover()
        engine.buffer_pool.clear()
        warmed = yield from engine.warmup_from_ebp(limit=3)
        return warmed

    assert run(dep, recover(dep.env)) <= 3
    # Engines without an EBP warm zero pages.
    stock = Deployment(DeploymentConfig.stock())
    stock.start()

    def no_ebp(env):
        return (yield from stock.engine.warmup_from_ebp())
        yield  # pragma: no cover

    proc = stock.env.process(no_ebp(stock.env))
    stock.env.run_until_event(proc)
    assert proc.value == 0


# ---------------------------------------------------------------------------
# 3. Local EBP recovery after an AStore server restart
# ---------------------------------------------------------------------------


def test_reclaim_server_restores_cached_pages():
    dep = build()
    ebp = dep.ebp
    assert len(ebp.index) > 0
    victim_id = next(iter(dep.astore.servers))
    victim = dep.astore.servers[victim_id]
    # Find pages cached on the victim before the crash.
    on_victim_before = {
        pid
        for pid, entry in ebp.index.items()
        if victim_id
        in (ebp.client.open_segments[entry.segment_id].route.replicas
            if entry.segment_id in ebp.client.open_segments else [])
    }
    if not on_victim_before:
        pytest.skip("seed placed no EBP segment on the first server")
    victim.crash()

    def wait(env):
        yield env.timeout(5.0)

    # The failure detector notices the crash on its own (no manual sweep)
    # and purges the dead server's entries from the EBP index.
    run(dep, wait(dep.env))
    assert dep.detector.failures_detected >= 1
    assert ebp.pages_purged > 0

    # PMem persistence: the server restarts with its pages intact and the
    # detector re-adopts the surviving cached pages automatically.
    victim.restart()
    run(dep, wait(dep.env))
    assert dep.detector.recoveries >= 1
    assert ebp.pages_reclaimed > 0

    # The reclaimed pages serve reads again.
    def read_back(env):
        hits = 0
        for pid in list(on_victim_before)[:5]:
            page = yield from ebp.get_page(pid)
            if page is not None:
                hits += 1
        return hits

    assert run(dep, read_back(dep.env)) > 0


def test_reclaim_requires_live_server():
    dep = build()
    victim_id = next(iter(dep.astore.servers))
    dep.astore.servers[victim_id].crash()

    from repro.common import StorageError

    def reclaim(env):
        return (yield from dep.ebp.reclaim_server(victim_id))
        yield  # pragma: no cover

    proc = dep.env.process(reclaim(dep.env))
    with pytest.raises(StorageError):
        dep.env.run_until_event(proc)
