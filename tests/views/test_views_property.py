"""Property test: incremental view state == fresh re-plan at the same LSN.

A random DML sequence (inserts, updates, deletes, aborted transactions)
runs against a viewed table.  At every quiescent point the proxy's
view-served answer must byte-match re-planning the same SELECT from
scratch on the primary -- including after a forced feed overflow (the
fuzzy-rescan path) and after a maintainer crash + rebuild.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.codec import INT, Column, Schema
from repro.harness.deployment import DeploymentSpec

VIEW_SQL = (
    "SELECT grp, COUNT(*) AS n, SUM(val) AS total, AVG(val) AS mean, "
    "MIN(val) AS lo, MAX(val) AS hi FROM t GROUP BY grp"
)
PROJ_SQL = "SELECT k, val FROM t WHERE grp = 0"
QUERIES = (VIEW_SQL + " ORDER BY grp", PROJ_SQL + " ORDER BY k")

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "abort_txn"]),
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=5,
    max_size=50,
)


def _settle(dep, timeout=3.0):
    deadline = dep.env.now + timeout
    while dep.env.now < deadline and not dep.views.caught_up():
        dep.run_for(0.002)
    assert dep.views.caught_up()


def _audit(dep, session, phase):
    """Every query: view-served answer == fresh primary re-plan."""
    for sql in QUERIES:
        def compare():
            served = yield from session.execute(sql)
            direct = yield from dep.frontend.primary_session.execute(sql)
            return served, direct

        proc = dep.env.process(compare(), name="views-audit")
        dep.env.run_until_event(proc)
        served, direct = proc.value
        assert served.columns == direct.columns, (phase, sql)
        assert served.rows == direct.rows, (phase, sql)
        assert session.last_route.startswith("view:"), (phase, sql)


@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=12, deadline=None)
def test_view_state_equals_fresh_replan_at_same_lsn(ops, seed):
    dep = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=3)
        .with_replicas(1)
        .with_views({"t_by_grp": VIEW_SQL, "t_grp0": PROJ_SQL},
                    feed_bound=32)
        .build()
    )
    dep.start()
    engine = dep.engine
    engine.create_table(
        "t",
        Schema([Column("k", INT()), Column("grp", INT()),
                Column("val", INT())]),
        ["k"],
    )
    dep.fleet.sync_catalogs()
    session = dep.frontend_session("prop")
    model = set()

    def work():
        for kind, key, value in ops:
            if kind == "insert":
                if key in model:
                    continue
                txn = engine.begin()
                yield from engine.insert(txn, "t", [key, key % 3, value])
                yield from engine.commit(txn)
                model.add(key)
            elif kind == "update":
                if key not in model:
                    continue
                txn = engine.begin()
                yield from engine.update(txn, "t", (key,), {"val": value})
                yield from engine.commit(txn)
            elif kind == "delete":
                if key not in model:
                    continue
                txn = engine.begin()
                yield from engine.delete(txn, "t", (key,))
                yield from engine.commit(txn)
                model.discard(key)
            elif kind == "abort_txn":
                txn = engine.begin()
                if key in model:
                    yield from engine.update(txn, "t", (key,), {"val": 999})
                ghost = key + 1000
                yield from engine.insert(txn, "t", [ghost, 0, 999])
                yield from engine.rollback(txn)

    proc = dep.env.process(work(), name="views-prop-dml")
    dep.env.run_until_event(proc)
    _settle(dep)
    _audit(dep, session, "after-dml")

    # Overflow the 32-record feed: stall the apply loops while one
    # transaction publishes a 100-row burst, forcing a fuzzy rescan.
    maintainer = dep.views
    poll_before = maintainer.poll_interval
    maintainer.poll_interval = 0.1

    def burst():
        txn = engine.begin()
        for k in range(2000, 2100):
            yield from engine.insert(txn, "t", [k, k % 3, k % 7])
        yield from engine.commit(txn)

    proc = dep.env.process(burst(), name="views-prop-burst")
    dep.env.run_until_event(proc)
    dep.run_for(0.12)
    maintainer.poll_interval = poll_before
    _settle(dep)
    assert any(v.feed.overflows for v in maintainer.views.values())
    _audit(dep, session, "after-overflow")

    # Crash the maintainer and rebuild from scratch.
    maintainer.crash()
    dep.run_for(0.01)
    maintainer.recover()
    _settle(dep)
    _audit(dep, session, "after-crash-rebuild")
