"""Unit tests: the Z-set delta algebra and weight-aware agg states."""

import pytest

from repro.query.cache import parse_entry
from repro.query.executor import (
    finalize_agg_states,
    new_agg_states,
    update_agg_states,
)
from repro.views.aggstate import (
    finalize_states,
    merge_states,
    new_states,
    update_states,
)
from repro.views.zset import ZSet


def test_zset_add_and_annihilation():
    z = ZSet()
    z.add(("a", 1))
    z.add(("a", 1))
    z.add(("b", 2))
    assert z.weights[("a", 1)] == 2
    z.add(("a", 1), -2)
    assert ("a", 1) not in z  # weight hit zero: entry vanishes
    assert len(z) == 1
    z.add(("b", 2), -1)
    assert len(z) == 0


def test_zset_rows_expand_weights_and_reject_negative():
    z = ZSet()
    z.add(("x",), 3)
    assert list(z.rows()) == [("x",), ("x",), ("x",)]
    z.add(("x",), -4)
    with pytest.raises(ValueError):
        list(z.rows())


def test_zset_merge_filter_map_eq():
    a = ZSet()
    a.add(1, 2)
    a.add(2, 1)
    b = ZSet()
    b.add(1, -2)
    b.add(3, 1)
    a.merge(b)
    assert dict(a.items()) == {2: 1, 3: 1}
    assert dict(a.filter(lambda r: r == 2).items()) == {2: 1}
    assert dict(a.map(lambda r: r * 10).items()) == {20: 1, 30: 1}
    c = ZSet()
    c.add(2, 1)
    c.add(3, 1)
    assert a == c


def _aggs(sql):
    """The AggCall list of a parsed single-table aggregate SELECT."""
    statement, _ = parse_entry(sql)
    return [item.expr for item in statement.items]


AGG_SQL = (
    "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v), "
    "COUNT(DISTINCT v) FROM t"
)


def _rows_to_states(aggs, rows):
    states = new_states(aggs)
    for row in rows:
        update_states(states, aggs, row, 1)
    return states


def _executor_values(aggs, rows):
    states = new_agg_states(aggs)
    for row in rows:
        update_agg_states(states, aggs, row)
    return finalize_agg_states(states, aggs)


ROWS = [
    {"t.v": 3}, {"t.v": 1}, {"t.v": None}, {"t.v": 3}, {"t.v": 7},
]


def test_finalize_matches_executor_accumulators():
    aggs = _aggs(AGG_SQL)
    ours = finalize_states(_rows_to_states(aggs, ROWS), aggs)
    theirs = _executor_values(aggs, ROWS)
    assert ours == theirs
    # Same types too (SUM/AVG finalize as float, COUNT as int).
    for agg in aggs:
        assert type(ours[agg]) is type(theirs[agg])


def test_finalize_matches_executor_on_empty_input():
    aggs = _aggs(AGG_SQL)
    ours = finalize_states(_rows_to_states(aggs, []), aggs)
    theirs = _executor_values(aggs, [])
    assert ours == theirs


def test_negative_weights_retract_rows_exactly():
    aggs = _aggs(AGG_SQL)
    states = _rows_to_states(aggs, ROWS)
    # Retract two rows; the result must equal folding the remainder.
    update_states(states, aggs, {"t.v": 3}, -1)
    update_states(states, aggs, {"t.v": None}, -1)
    remainder = [{"t.v": 1}, {"t.v": 3}, {"t.v": 7}]
    assert finalize_states(states, aggs) == _executor_values(aggs, remainder)


def test_min_max_survive_retraction_of_current_extremum():
    aggs = _aggs("SELECT MIN(v), MAX(v) FROM t")
    states = _rows_to_states(
        aggs, [{"t.v": 5}, {"t.v": 9}, {"t.v": 2}]
    )
    update_states(states, aggs, {"t.v": 2}, -1)  # retract the minimum
    update_states(states, aggs, {"t.v": 9}, -1)  # retract the maximum
    values = finalize_states(states, aggs)
    assert list(values.values()) == [5, 5]


def test_distinct_count_tracks_live_values_only():
    aggs = _aggs("SELECT COUNT(DISTINCT v) FROM t")
    states = _rows_to_states(aggs, [{"t.v": 1}, {"t.v": 1}, {"t.v": 2}])
    assert list(finalize_states(states, aggs).values()) == [2]
    update_states(states, aggs, {"t.v": 1}, -1)
    assert list(finalize_states(states, aggs).values()) == [2]  # one 1 left
    update_states(states, aggs, {"t.v": 1}, -1)
    assert list(finalize_states(states, aggs).values()) == [1]


def test_merge_states_equals_single_fold():
    aggs = _aggs(AGG_SQL)
    left = _rows_to_states(aggs, ROWS[:2])
    right = _rows_to_states(aggs, ROWS[2:])
    merge_states(left, right)
    assert finalize_states(left, aggs) == _executor_values(aggs, ROWS)
