"""Deployment-level tests for the view maintainer: parity, freshness,
overflow rescans, crash/rebuild, routing, and observability."""

from repro.engine.codec import INT, Column, Schema
from repro.harness.deployment import DeploymentSpec
from repro.harness.stats import collect_stats

GROUPS = 4
VIEW_SQL = (
    "SELECT grp, COUNT(*) AS n, SUM(val) AS total, AVG(val) AS mean, "
    "MIN(val) AS lo, MAX(val) AS hi FROM facts GROUP BY grp"
)
PROJ_SQL = "SELECT k, val FROM facts WHERE grp = 1"
QUERY = VIEW_SQL + " ORDER BY grp"


def build(seed=19, views=None, **view_kwargs):
    spec = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=3)
        .with_replicas(1)
        .with_views(views or {"by_grp": VIEW_SQL, "grp_one": PROJ_SQL},
                    **view_kwargs)
    )
    dep = spec.build()
    dep.start()
    dep.engine.create_table(
        "facts",
        Schema([Column("k", INT()), Column("grp", INT()),
                Column("val", INT())]),
        ["k"],
    )
    dep.fleet.sync_catalogs()
    return dep


def run(dep, gen, name="test"):
    proc = dep.env.process(gen, name=name)
    dep.env.run_until_event(proc)
    return proc.value


def insert_rows(dep, session, count, start=0):
    def work(txn):
        for k in range(start, start + count):
            yield from dep.engine.insert(
                txn, "facts", [k, k % GROUPS, k % 13]
            )
        return count

    return run(dep, session.write(work))


def settle(dep, timeout=2.0):
    deadline = dep.env.now + timeout
    while dep.env.now < deadline and not dep.views.caught_up():
        dep.run_for(0.002)
    assert dep.views.caught_up()


def parity(dep, session, sql):
    """View-served result must byte-match a fresh primary rescan."""
    served = run(dep, session.execute(sql))
    direct = run(dep, dep.frontend.primary_session.execute(sql))
    assert served.columns == direct.columns
    assert served.rows == direct.rows
    return served


def test_view_parity_across_insert_update_delete():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 40)
    settle(dep)
    parity(dep, session, QUERY)
    assert session.last_route == "view:by_grp"

    def churn(txn):
        yield from dep.engine.update(txn, "facts", (5,), {"val": 99})
        yield from dep.engine.update(txn, "facts", (6,), {"grp": 0})
        yield from dep.engine.delete(txn, "facts", (7,))
        return True

    run(dep, session.write(churn))
    settle(dep)
    parity(dep, session, QUERY)
    parity(dep, session, PROJ_SQL + " ORDER BY k")
    assert session.last_route == "view:grp_one"


def test_read_your_writes_waits_on_watermark():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 8)
    settle(dep)

    def write_then_query():
        def more(txn):
            for k in range(100, 110):
                yield from dep.engine.insert(txn, "facts", [k, 1, 1])
            return True

        yield from session.write(more)
        # The maintainer polls every 2 ms; the session token forces a
        # watermark wait so the served answer includes our own writes.
        return (yield from session.execute(VIEW_SQL))

    result = run(dep, write_then_query())
    assert session.last_route == "view:by_grp"
    counts = {row[0]: row[1] for row in result.rows}
    assert counts[1] == 2 + 10  # k in {1, 5} from the seed rows, plus ours
    assert dep.views.lsn_waits >= 1
    assert dep.views.lsn_wait_timeouts == 0


def test_aborted_transaction_leaves_view_unchanged():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 20)
    settle(dep)
    before = run(dep, session.execute(QUERY))

    def doomed():
        engine = dep.engine
        txn = engine.begin()
        for k in range(200, 220):
            yield from engine.insert(txn, "facts", [k, k % GROUPS, 7])
        yield from engine.update(txn, "facts", (3,), {"val": 77})
        yield from engine.delete(txn, "facts", (4,))
        yield from engine.rollback(txn)

    run(dep, doomed())
    settle(dep)
    after = parity(dep, session, QUERY)
    assert after.rows == before.rows


def test_feed_overflow_forces_rescan_and_stays_exact():
    dep = build(views={"by_grp": VIEW_SQL}, feed_bound=16)
    session = dep.frontend_session("client")
    insert_rows(dep, session, 10)
    settle(dep)
    maintainer = dep.views
    view = maintainer.views["by_grp"]
    rescans_before = view.rescans

    # Stall the apply loop so publishes pile past the 16-record bound.
    poll_before = maintainer.poll_interval
    maintainer.poll_interval = 0.1
    insert_rows(dep, session, 120, start=1000)
    dep.run_for(0.12)
    maintainer.poll_interval = poll_before
    settle(dep)

    assert view.feed.overflows >= 1
    assert view.rescans > rescans_before
    parity(dep, session, QUERY)
    assert session.last_route == "view:by_grp"


def test_crash_bounces_reads_then_rebuilds():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 30)
    settle(dep)
    parity(dep, session, QUERY)
    assert session.last_route == "view:by_grp"

    dep.views.crash()
    dep.run_for(0.01)
    assert not dep.views.caught_up()
    # Still correct, just not view-served: the proxy bounces the read.
    parity(dep, session, QUERY)
    assert session.last_route != "view:by_grp"
    assert dep.frontend.views_bounced >= 1

    dep.views.recover()
    settle(dep)
    parity(dep, session, QUERY)
    assert session.last_route == "view:by_grp"
    counters = dep.views.counters()
    assert counters["crashes"] == 1
    assert counters["recoveries"] == 1


def test_prepared_statements_skip_view_routing():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 12)
    settle(dep)
    handle = session.prepare(QUERY)
    prepared = run(dep, handle.execute())
    direct = run(dep, dep.frontend.primary_session.execute(QUERY))
    assert prepared.rows == direct.rows
    assert not session.last_route.startswith("view:")


def test_view_gauges_in_stats_snapshot():
    dep = build()
    session = dep.frontend_session("client")
    insert_rows(dep, session, 25)
    settle(dep)
    # A post-build write so records arrive via the feed, not the rescan.
    insert_rows(dep, session, 5, start=500)
    settle(dep)
    run(dep, session.execute(QUERY))
    snap = collect_stats(dep)

    maintainer = snap["views"]["maintainer"]
    assert maintainer["alive"] == 1
    assert maintainer["views"] == 2
    assert maintainer["serves"] >= 1
    assert maintainer["records_folded"] > 0

    by_grp = snap["views"]["by_grp"]
    assert by_grp["size"] == GROUPS
    assert by_grp["watermark"] > 0
    assert by_grp["rescans"] >= 1  # the initial build

    feed = snap["engine"]["redo_feed"]
    assert feed["subscribers"] == 3  # one standby replica + two views
    assert feed["published"] > 0
    assert feed["overflows"] == 0

    proxy = snap["frontend"]["proxy"]
    assert proxy["views_served"] >= 1
