"""ViewDefinition validation and view-eligibility matching."""

import pytest

from repro.common import QueryError
from repro.harness.deployment import DeploymentSpec
from repro.query.cache import parse_entry
from repro.query.planner import match_view_select
from repro.views.definition import ViewDefinition


def test_aggregate_view_plan():
    view = ViewDefinition(
        "v",
        "SELECT grp, COUNT(*) AS n, SUM(val) AS total FROM facts "
        "WHERE val > 0 GROUP BY grp",
    )
    assert view.table == "facts"
    assert view.is_aggregate
    assert len(view.group_by) == 1
    assert len(view.aggregates) == 2
    assert view.item_plan == (("group", 0), ("agg", 0), ("agg", 1))


def test_projection_view_plan():
    view = ViewDefinition("p", "SELECT k, val FROM facts WHERE grp = 3")
    assert not view.is_aggregate
    assert view.aggregates == ()
    assert view.item_plan == (("col", 0), ("col", 1))


@pytest.mark.parametrize(
    "sql",
    [
        # Non-linear / unsupported shapes, each rejected with a reason.
        "SELECT a.k FROM a JOIN b ON a.k = b.k",      # join
        "SELECT * FROM facts",                        # star
        "SELECT k FROM facts WHERE k = ?",            # parameter
        "SELECT k FROM facts ORDER BY k",             # order by
        "SELECT k FROM facts LIMIT 5",                # limit
        "SELECT COUNT(DISTINCT val) FROM facts",      # distinct agg
        "SELECT SUM(val) + 1 FROM facts",             # composite agg expr
        "SELECT k, SUM(val) FROM facts GROUP BY grp", # k not grouped
        "SELECT k FROM facts f",                      # table alias
        "INSERT INTO facts VALUES (1, 2, 3)",         # not a SELECT
    ],
)
def test_rejected_definitions(sql):
    with pytest.raises(QueryError):
        ViewDefinition("bad", sql)


VIEW = ViewDefinition(
    "v", "SELECT grp, COUNT(*) AS n, SUM(val) AS total FROM facts GROUP BY grp"
)


def _parse(sql):
    statement, _ = parse_entry(sql)
    return statement


def test_match_accepts_reordered_aliased_subset():
    query = _parse(
        "SELECT SUM(val) AS s, grp FROM facts GROUP BY grp ORDER BY grp"
    )
    assert match_view_select(query, VIEW.select) == [2, 0]


def test_match_rejects_mismatches():
    for sql in (
        "SELECT grp, COUNT(*) FROM other GROUP BY grp",        # table
        "SELECT grp, COUNT(*) FROM facts WHERE val > 0 GROUP BY grp",  # where
        "SELECT grp, COUNT(*) FROM facts GROUP BY grp, val",   # group by
        "SELECT grp, AVG(val) FROM facts GROUP BY grp",        # missing agg
        "SELECT grp FROM facts GROUP BY grp ORDER BY val",     # order col
    ):
        assert match_view_select(_parse(sql), VIEW.select) is None


def test_spec_with_views_round_trip():
    spec = DeploymentSpec.astore_ebp(seed=3).with_views(
        {"v": VIEW.sql}, feed_bound=128, poll_interval=1e-3
    )
    assert spec.views == (("v", VIEW.sql),)
    assert spec.view_feed_bound == 128
    assert spec.view_poll_interval == 1e-3


def test_spec_rejects_bad_view_configs():
    base = DeploymentSpec.astore_ebp(seed=3)
    with pytest.raises(ValueError):
        base.with_shards(2).with_views({"v": VIEW.sql})
    with pytest.raises(ValueError):
        base.with_views({})
    with pytest.raises(ValueError):
        base.with_views({"v": "SELECT * FROM facts"})
    with pytest.raises(ValueError):
        base.with_views([("v", VIEW.sql), ("v", VIEW.sql)])
    with pytest.raises(ValueError):
        base.with_views({"v": VIEW.sql}, feed_bound=0)
